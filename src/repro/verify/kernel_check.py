"""Kernel determinism check (``VAP4xx``).

The kernel's register semantics rest on one discipline: at a clock edge
every component first ``sample()``s the state its neighbours committed
last cycle, and only ``commit()`` mutates shared state.  A component that
writes a shared FIFO during *sample* makes the result depend on the
attachment order of components -- a write-before-commit race.

Two structural rules run with no simulation time:

* ``VAP401`` (error): one producer/consumer interface terminating more
  than one established channel.  The switch fabric samples channels in
  insertion order, so two channels draining the same producer FIFO (or
  filling the same consumer FIFO) deliver order-dependent words.
* ``VAP403`` (warning): a hardware module or IOM overriding ``sample()``.
  The module base class does all work in ``commit()``; an override is
  the structural signature of sample-phase mutation.

:class:`DeterminismProbe` is the dynamic instrumentation shim behind
``VAP402``: installed on the simulator (``Simulator.phase_probe``), it is
notified by :class:`~repro.sim.clock.Clock` around each component's
sample/commit call and intercepts every FIFO mutation, so two distinct
components mutating the same FIFO at the same instant during the sample
phase are caught red-handed.  Running the probe **advances simulated
time**, so it is opt-in (``probe_cycles > 0``).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.modules.base import HardwareModule
from repro.modules.iom import Iom
from repro.sim.clock import ClockedComponent
from repro.sim.fifo import SyncFifo
from repro.verify.diagnostics import Diagnostic, diag

ANALYZER = "kernel"


def _d(code: str, message: str, location: str = "") -> Diagnostic:
    return diag(code, message, location=location, analyzer=ANALYZER)


def _label(component) -> str:
    return getattr(component, "name", type(component).__name__)


class DeterminismProbe:
    """Cycle-level shim recording who mutates which FIFO in which phase.

    Install with :meth:`install` after assigning to
    ``simulator.phase_probe``; every :class:`~repro.sim.clock.Clock` then
    brackets each component's phase call with :meth:`begin`/:meth:`end`,
    and the patched :class:`~repro.sim.fifo.SyncFifo` mutators report in.
    """

    def __init__(self) -> None:
        #: (time_ps, fifo_name) -> labels of sample-phase mutators
        self.sample_mutators: Dict[Tuple[int, str], Set[str]] = {}
        #: (module_label, fifo_name) pairs mutated by modules in sample
        self.module_sample_writes: Set[Tuple[str, str]] = set()
        self._current = None  # (component, phase, time_ps) or None
        self._originals = None

    # -- Clock hooks ---------------------------------------------------
    def begin(self, component, phase: str, time_ps: int) -> None:
        self._current = (component, phase, time_ps)

    def end(self) -> None:
        self._current = None

    # -- FIFO instrumentation ------------------------------------------
    def install(self) -> None:
        if self._originals is not None:
            return
        self._originals = (SyncFifo.push, SyncFifo.pop, SyncFifo.clear)
        probe = self

        def push(fifo, word, _orig=SyncFifo.push):
            probe._record(fifo)
            return _orig(fifo, word)

        def pop(fifo, _orig=SyncFifo.pop):
            probe._record(fifo)
            return _orig(fifo)

        def clear(fifo, _orig=SyncFifo.clear):
            probe._record(fifo)
            return _orig(fifo)

        SyncFifo.push = push  # type: ignore[method-assign]
        SyncFifo.pop = pop  # type: ignore[method-assign]
        SyncFifo.clear = clear  # type: ignore[method-assign]

    def uninstall(self) -> None:
        if self._originals is None:
            return
        SyncFifo.push, SyncFifo.pop, SyncFifo.clear = self._originals
        self._originals = None

    def _record(self, fifo) -> None:
        if self._current is None:
            return  # software/event-phase mutation: serialised, safe
        component, phase, time_ps = self._current
        if phase != "sample":
            return
        label = _label(component)
        self.sample_mutators.setdefault(
            (time_ps, fifo.name), set()
        ).add(label)
        if isinstance(component, (HardwareModule, Iom)):
            self.module_sample_writes.add((label, fifo.name))

    # -- results -------------------------------------------------------
    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        raced: Dict[str, Set[str]] = {}
        for (_, fifo_name), labels in self.sample_mutators.items():
            if len(labels) > 1:
                raced.setdefault(fifo_name, set()).update(labels)
        for fifo_name in sorted(raced):
            out.append(_d(
                "VAP402",
                f"FIFO {fifo_name!r} mutated by "
                f"{sorted(raced[fifo_name])} within one sample phase; the "
                "outcome depends on component attachment order",
                fifo_name,
            ))
        for label, fifo_name in sorted(self.module_sample_writes):
            out.append(_d(
                "VAP403",
                f"module {label!r} mutates FIFO {fifo_name!r} during "
                "sample(); mutation belongs in commit()",
                label,
            ))
        return out


def _shared_interface_checks(system) -> List[Diagnostic]:
    """VAP401: interfaces terminating more than one live channel."""
    out: List[Diagnostic] = []
    producers: Dict[int, List] = {}
    consumers: Dict[int, List] = {}
    for rsb in system.rsbs:
        for channel in rsb.fabric.channels.values():
            if channel.released:
                continue
            producers.setdefault(id(channel.producer), []).append(channel)
            consumers.setdefault(id(channel.consumer), []).append(channel)
    for role, table in (("producer", producers), ("consumer", consumers)):
        for channels in table.values():
            if len(channels) < 2:
                continue
            iface = getattr(channels[0], role)
            ids = sorted(c.channel_id for c in channels)
            out.append(_d(
                "VAP401",
                f"{role} interface {iface.name!r} terminates channels "
                f"{ids}; the fabric samples them in insertion order, so "
                "word placement is order-dependent",
                iface.name,
            ))
    return out


def _sample_override_checks(system) -> List[Diagnostic]:
    """VAP403 (structural): modules/IOMs overriding ``sample()``."""
    out: List[Diagnostic] = []
    seen: Set[int] = set()
    candidates = [
        (slot.name, slot.module) for slot in system.prr_slots
    ] + [
        (slot.name, slot.iom) for slot in system.iom_slots
    ]
    for slot_name, module in candidates:
        if module is None or id(module) in seen:
            continue
        seen.add(id(module))
        sample = type(module).sample
        if sample not in (HardwareModule.sample, ClockedComponent.sample,
                          getattr(Iom, "sample", None)):
            out.append(_d(
                "VAP403",
                f"{type(module).__name__} {_label(module)!r} in "
                f"{slot_name} overrides sample(); shared-state mutation "
                "there races with the fabric -- do the work in commit()",
                slot_name,
            ))
    return out


def check_kernel(system, probe_cycles: int = 0) -> List[Diagnostic]:
    """Run the determinism checks.

    ``probe_cycles > 0`` additionally runs the :class:`DeterminismProbe`
    for that many system-clock cycles -- note this **advances simulated
    time** on the live system.
    """
    out = _shared_interface_checks(system)
    out.extend(_sample_override_checks(system))
    if probe_cycles > 0:
        probe = DeterminismProbe()
        sim = system.sim
        previous = getattr(sim, "phase_probe", None)
        sim.phase_probe = probe
        probe.install()
        try:
            system.run_for_cycles(probe_cycles)
        finally:
            probe.uninstall()
            sim.phase_probe = previous
        out.extend(probe.diagnostics())
    return out
