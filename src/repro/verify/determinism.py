"""Configuration-determinism lint (``VAP5xx``).

Fault campaigns (:mod:`repro.faults`) promise byte-identical resilience
reports for the same ``(seed, config)``; that promise dies the moment a
config smuggles in ambient nondeterminism -- a missing campaign seed, a
``"seed": "random"`` placeholder, or a value templated from wall-clock
time.  This pass walks a parsed JSON spec (jobfile, sysdef or bare
campaign config) *before* anything runs and reports:

* **VAP501** (warning) -- a random stream source (``noise`` /
  ``noisy_sine``) with no explicit ``seed``.  Jobs fall back to a
  name-derived seed, which is reproducible but implicit; standalone
  sources have no fallback at all.
* **VAP502** (error) -- a campaign config without an explicit integer
  ``seed``, or any ``seed`` field holding a non-integer.
* **VAP503** (error) -- a string value containing a recognisable
  nondeterminism marker (``time.time``, ``Date.now``, ``$RANDOM``,
  ``uuid`` and friends).
"""

from __future__ import annotations

from typing import Any, List

from repro.verify.diagnostics import Diagnostic, diag

#: substrings (lower-cased match) that mark a value as sourced from
#: wall-clock time or ambient randomness rather than the spec itself
_NONDET_MARKERS = (
    "time.time",
    "date.now",
    "datetime.now",
    "$random",
    "${random",
    "os.urandom",
    "uuid4",
    "math.random",
)

#: seed placeholders that defer the choice to run time
_SEED_PLACEHOLDERS = ("random", "auto", "now", "time", "entropy")

#: keys identifying a dict as a fault-campaign config
_CAMPAIGN_KEYS = frozenset(
    {"seu_frames", "lane_stuck", "fifo_bit", "icap_corrupt",
     "scrub_period_us", "escalate_after", "quarantine_after"}
)

#: source kinds whose output depends on a seed
_SEEDED_SOURCE_KINDS = frozenset({"noise", "noisy_sine"})


def check_config_determinism(
    spec: Any, subject: str = "config"
) -> List[Diagnostic]:
    """Lint a parsed JSON spec for reproducibility hazards.

    ``subject`` names the root for diagnostic locations (e.g. the file
    name); nested findings carry JSON-path-style locations like
    ``jobfile.jobs[2].source``.
    """
    findings: List[Diagnostic] = []
    _walk(spec, subject, findings)
    return findings


def _walk(value: Any, path: str, findings: List[Diagnostic]) -> None:
    if isinstance(value, dict):
        _check_dict(value, path, findings)
        for key in value:
            _walk(value[key], f"{path}.{key}", findings)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _walk(item, f"{path}[{index}]", findings)
    elif isinstance(value, str):
        _check_string(value, path, findings)


def _check_dict(value: dict, path: str, findings: List[Diagnostic]) -> None:
    if _CAMPAIGN_KEYS & set(value) and "seed" not in value:
        findings.append(diag(
            "VAP502",
            "fault-campaign config has no 'seed'; campaigns must be "
            "explicitly seeded to reproduce",
            location=path,
            analyzer="determinism",
        ))
    if "seed" in value:
        _check_seed(value["seed"], f"{path}.seed", findings)
    if (
        value.get("kind") in _SEEDED_SOURCE_KINDS
        and "seed" not in value
    ):
        findings.append(diag(
            "VAP501",
            f"source kind {value['kind']!r} has no explicit 'seed' "
            "(falls back to derived seeding when run as a job)",
            location=path,
            analyzer="determinism",
        ))


def _check_seed(seed: Any, path: str, findings: List[Diagnostic]) -> None:
    if isinstance(seed, int) and not isinstance(seed, bool):
        return
    if isinstance(seed, str) and seed.strip().lower() in _SEED_PLACEHOLDERS:
        findings.append(diag(
            "VAP503",
            f"seed placeholder {seed!r} defers the choice to run time; "
            "reproduction needs a literal integer",
            location=path,
            analyzer="determinism",
        ))
        return
    findings.append(diag(
        "VAP502",
        f"seed must be a literal integer, got {seed!r}",
        location=path,
        analyzer="determinism",
    ))


def _check_string(value: str, path: str, findings: List[Diagnostic]) -> None:
    lowered = value.lower()
    for marker in _NONDET_MARKERS:
        if marker in lowered:
            findings.append(diag(
                "VAP503",
                f"value contains nondeterministic expression "
                f"{marker!r}: {value!r}",
                location=path,
                analyzer="determinism",
            ))
            return
