"""VAPRES inter-module communication architecture.

Models Section III.B of the paper: a linear array of registered switch
boxes joins the PRRs and IOMs of one reconfigurable streaming block (RSB).
Streaming channels are established at runtime by configuring switch-box
multiplexers; data then flows one switch box per cycle in a pipelined
fashion, a valid bit (the negated FIFO-empty flag) rides as the MSB of each
word, and a *feedback FIFO-full* signal pipelined backwards provides
loss-free back-pressure despite the pipeline latency.

* :mod:`repro.comm.switchbox` -- switch boxes with ``kr``/``kl``
  directional lanes and output-port multiplexers;
* :mod:`repro.comm.interfaces` -- producer/consumer module interfaces
  (Figure 2) with their asynchronous FIFOs;
* :mod:`repro.comm.channel` -- the pipelined streaming channel datapath;
* :mod:`repro.comm.router` -- channel establishment/release over the
  switch-box array (the engine behind ``vapres_establish_channel``);
* :mod:`repro.comm.fsl` -- fast simplex links between the MicroBlaze and
  each PRR/IOM.
"""

from repro.comm.channel import StreamingChannel, SwitchFabric
from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.comm.router import ChannelRouter, CommState, RoutingError
from repro.comm.switchbox import LaneRef, SwitchBox, SwitchBoxError

__all__ = [
    "ChannelRouter",
    "CommState",
    "ConsumerInterface",
    "FslLink",
    "LaneRef",
    "ProducerInterface",
    "RoutingError",
    "StreamingChannel",
    "SwitchBox",
    "SwitchBoxError",
    "SwitchFabric",
]
