"""Channel establishment over the switch-box array.

This is the engine behind the paper's ``vapres_establish_channel`` API
(Table 2): given the producer's and consumer's switch-box indices it walks
the linear array in the needed direction, claims one free lane per hop and
programs each box's output multiplexer.  If any hop is exhausted the
partial allocation is rolled back and the attempt fails -- the API then
returns 0, exactly as in the paper.

:class:`CommState` mirrors the ``comm_state`` structure the API threads
through calls: a snapshot of lane availability per switch box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.comm.channel import StreamingChannel, SwitchFabric
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.comm.switchbox import (
    LEFT,
    MODULE_IN,
    MODULE_OUT,
    RIGHT,
    LaneRef,
    SourceRef,
    SwitchBox,
    SwitchBoxError,
)


class RoutingError(Exception):
    """Raised by :meth:`ChannelRouter.establish` when no path exists."""


@dataclass
class CommState:
    """Available lane counts per switch box (the API's ``comm_state``)."""

    free_right: List[int]
    free_left: List[int]
    free_module_out: List[int]

    @classmethod
    def snapshot(cls, boxes: List[SwitchBox]) -> "CommState":
        return cls(
            free_right=[len(b.free_lanes(RIGHT)) for b in boxes],
            free_left=[len(b.free_lanes(LEFT)) for b in boxes],
            free_module_out=[len(b.free_lanes(MODULE_OUT)) for b in boxes],
        )

    def can_route(self, src: int, dst: int) -> bool:
        """Feasibility check without mutating any switch box."""
        if src == dst:
            return self.free_module_out[dst] > 0
        if src < dst:
            span = range(src, dst)
            lanes = self.free_right
        else:
            span = range(dst + 1, src + 1)
            lanes = self.free_left
        if any(lanes[i] == 0 for i in span):
            return False
        return self.free_module_out[dst] > 0


class ChannelRouter:
    """Allocates and releases streaming channels over one RSB's boxes."""

    def __init__(self, boxes: List[SwitchBox], fabric: SwitchFabric) -> None:
        if not boxes:
            raise RoutingError("an RSB needs at least one switch box")
        self.boxes = list(boxes)
        self.fabric = fabric
        self._next_id = 0
        self._channel_hops: Dict[int, List[LaneRef]] = {}

    # ------------------------------------------------------------------
    def establish(
        self,
        src_box: int,
        dst_box: int,
        producer: ProducerInterface,
        consumer: ConsumerInterface,
        src_port: int = 0,
        dst_port: int = 0,
    ) -> StreamingChannel:
        """Create a channel from the module at ``src_box`` to ``dst_box``.

        ``src_port``/``dst_port`` select which of the module's ``ko``
        producer / ``ki`` consumer lanes terminate the channel.  Raises
        :class:`RoutingError` when a hop has no free lane; the partial
        allocation is rolled back first.
        """
        self._check_index(src_box)
        self._check_index(dst_box)
        channel_id = self._next_id
        hops: List[LaneRef] = []
        try:
            hops = self._allocate_path(
                src_box, dst_box, channel_id, src_port, dst_port, hops
            )
        except SwitchBoxError as exc:
            for ref in hops:
                self.boxes[ref.box].release(ref)
            raise RoutingError(str(exc)) from exc
        self._next_id += 1
        channel = StreamingChannel(channel_id, producer, consumer, hops)
        self._channel_hops[channel_id] = hops
        self.fabric.add(channel)
        return channel

    def try_establish(
        self,
        src_box: int,
        dst_box: int,
        producer: ProducerInterface,
        consumer: ConsumerInterface,
        src_port: int = 0,
        dst_port: int = 0,
    ) -> Optional[StreamingChannel]:
        """Like :meth:`establish` but returns None on failure (API style)."""
        try:
            return self.establish(
                src_box, dst_box, producer, consumer, src_port, dst_port
            )
        except RoutingError:
            return None

    def release(self, channel: StreamingChannel) -> int:
        """Tear down a channel, freeing its lanes; returns words lost."""
        hops = self._channel_hops.pop(channel.channel_id, None)
        if hops is None:
            raise RoutingError(f"channel {channel.channel_id} is not established")
        lost = channel.release()
        for ref in hops:
            self.boxes[ref.box].release(ref)
        self.fabric.remove(channel.channel_id)
        return lost

    # ------------------------------------------------------------------
    def _allocate_path(
        self,
        src: int,
        dst: int,
        channel_id: int,
        src_port: int,
        dst_port: int,
        hops: List[LaneRef],
    ) -> List[LaneRef]:
        """Allocate into ``hops`` in place so failures can be rolled back."""
        if src == dst:
            hops.append(
                self.boxes[dst].allocate_specific(
                    MODULE_OUT, dst_port, channel_id, SourceRef(MODULE_IN, src_port)
                )
            )
            return hops
        step = 1 if src < dst else -1
        direction = RIGHT if src < dst else LEFT
        prev_lane: Optional[int] = None
        box = src
        while box != dst:
            source = (
                SourceRef(MODULE_IN, src_port)
                if box == src
                else SourceRef(direction, prev_lane)
            )
            ref = self.boxes[box].allocate(direction, channel_id, source)
            hops.append(ref)
            prev_lane = ref.lane
            box += step
        hops.append(
            self.boxes[dst].allocate_specific(
                MODULE_OUT, dst_port, channel_id, SourceRef(direction, prev_lane)
            )
        )
        return hops

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.boxes):
            raise RoutingError(
                f"switch box index {index} out of range [0,{len(self.boxes)})"
            )

    # ------------------------------------------------------------------
    def comm_state(self) -> CommState:
        return CommState.snapshot(self.boxes)

    def hops_of(self, channel: StreamingChannel) -> List[LaneRef]:
        return list(self._channel_hops.get(channel.channel_id, []))

    @property
    def established_count(self) -> int:
        return len(self._channel_hops)
