"""Switch boxes: the nodes of the linear inter-module network.

Each PRR/IOM pairs with one switch box.  A switch box owns (Figure 7):

* ``kr`` one-way lanes flowing to its right neighbour,
* ``kl`` one-way lanes flowing to its left neighbour,
* ``ko`` module input ports (fed by the paired module's producer
  interface), and
* ``ki`` module output ports (feeding the paired module's consumer
  interface).

Internally every input port has a pipeline register and every output port
a multiplexer selecting one registered input (paper Section III.B).  The
PRSocket ``MUX_sel`` DCR bits program those multiplexers; here the
selection doubles as lane *ownership* bookkeeping used by the channel
router, and the encoded mux configuration is readable back through the
DCR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

RIGHT = "R"
LEFT = "L"
MODULE_IN = "MI"   # from the module's producer interface into the box
MODULE_OUT = "MO"  # from the box to the module's consumer interface


class SwitchBoxError(Exception):
    """Raised on illegal lane allocation or mux programming."""


@dataclass(frozen=True)
class LaneRef:
    """One output-port lane of one switch box.

    ``direction`` is :data:`RIGHT`, :data:`LEFT` or :data:`MODULE_OUT`;
    ``lane`` indexes within the direction's lane set.
    """

    box: int
    direction: str
    lane: int

    def __str__(self) -> str:
        return f"SB{self.box}.{self.direction}{self.lane}"


@dataclass(frozen=True)
class SourceRef:
    """One registered input port of a switch box (a mux source)."""

    direction: str  # RIGHT / LEFT (arriving lanes) or MODULE_IN
    lane: int

    def __str__(self) -> str:
        return f"{self.direction}{self.lane}"


class SwitchBox:
    """One switch box of an RSB's linear array."""

    def __init__(
        self, index: int, kr: int, kl: int, ki: int, ko: int, width: int = 32
    ) -> None:
        if min(kr, kl) < 0 or min(ki, ko) < 1:
            raise SwitchBoxError("lane counts must be kr,kl >= 0 and ki,ko >= 1")
        self.index = index
        self.kr = kr
        self.kl = kl
        self.ki = ki
        self.ko = ko
        self.width = width
        # channel-id owning each output lane (None = free)
        self._owners: Dict[Tuple[str, int], Optional[int]] = {}
        for lane in range(kr):
            self._owners[(RIGHT, lane)] = None
        for lane in range(kl):
            self._owners[(LEFT, lane)] = None
        for lane in range(ki):
            self._owners[(MODULE_OUT, lane)] = None
        # mux source per output lane
        self._mux: Dict[Tuple[str, int], Optional[SourceRef]] = {
            key: None for key in self._owners
        }

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def free_lanes(self, direction: str) -> List[int]:
        """Indices of unowned output lanes in ``direction``."""
        return [
            lane
            for (d, lane), owner in sorted(self._owners.items())
            if d == direction and owner is None
        ]

    def allocate(
        self, direction: str, channel_id: int, source: SourceRef
    ) -> LaneRef:
        """Claim the first free lane in ``direction`` and program its mux."""
        free = self.free_lanes(direction)
        if not free:
            raise SwitchBoxError(
                f"SB{self.index}: no free {direction} lane for channel {channel_id}"
            )
        return self.allocate_specific(direction, free[0], channel_id, source)

    def allocate_specific(
        self, direction: str, lane: int, channel_id: int, source: SourceRef
    ) -> LaneRef:
        """Claim one particular output lane (e.g. a named module port)."""
        key = (direction, lane)
        if key not in self._owners:
            raise SwitchBoxError(f"SB{self.index}: no lane {direction}{lane}")
        if self._owners[key] is not None:
            raise SwitchBoxError(
                f"SB{self.index}: lane {direction}{lane} already owned by "
                f"channel {self._owners[key]}"
            )
        self._validate_source(source)
        self._owners[key] = channel_id
        self._mux[key] = source
        return LaneRef(self.index, direction, lane)

    def release(self, ref: LaneRef) -> None:
        key = (ref.direction, ref.lane)
        if key not in self._owners:
            raise SwitchBoxError(f"SB{self.index}: unknown lane {ref}")
        if self._owners[key] is None:
            raise SwitchBoxError(f"SB{self.index}: lane {ref} is not allocated")
        self._owners[key] = None
        self._mux[key] = None

    def owner_of(self, direction: str, lane: int) -> Optional[int]:
        return self._owners[(direction, lane)]

    @property
    def lane_count(self) -> int:
        """Total output lanes (kr + kl + ki) of this box."""
        return len(self._owners)

    @property
    def lanes_in_use(self) -> int:
        """Output lanes currently owned by an established channel."""
        return sum(
            1 for owner in self._owners.values() if owner is not None
        )

    def _validate_source(self, source: SourceRef) -> None:
        limits = {RIGHT: self.kr, LEFT: self.kl, MODULE_IN: self.ko}
        if source.direction not in limits:
            raise SwitchBoxError(f"bad mux source direction {source.direction!r}")
        if not 0 <= source.lane < limits[source.direction]:
            raise SwitchBoxError(
                f"SB{self.index}: mux source {source} out of range"
            )

    # ------------------------------------------------------------------
    # DCR view (PRSocket MUX_sel bits)
    # ------------------------------------------------------------------
    def mux_select_bits(self) -> int:
        """Encode the mux configuration as the DCR ``MUX_sel`` field.

        Each output lane contributes ``ceil(log2(sources+1))`` bits; 0 means
        unrouted, n>0 selects the n-th possible source in a canonical
        ordering (arriving right lanes, arriving left lanes, module inputs).
        """
        sources = self._canonical_sources()
        bits_per_lane = max(1, (len(sources)).bit_length())
        value = 0
        shift = 0
        for key in sorted(self._mux):
            src = self._mux[key]
            code = 0 if src is None else sources.index(src) + 1
            value |= code << shift
            shift += bits_per_lane
        return value

    def set_mux_from_bits(self, value: int) -> None:
        """Program the multiplexers from a raw DCR ``MUX_sel`` write.

        This is the low-level hardware path (the MicroBlaze writing the
        PRSocket DCR directly).  It sets mux sources only -- channel/lane
        *ownership* is software state kept by the
        :class:`~repro.comm.router.ChannelRouter`; mixing raw writes with
        router-managed channels is a software bug, as on the real system.
        """
        sources = self._canonical_sources()
        bits_per_lane = max(1, (len(sources)).bit_length())
        lane_mask = (1 << bits_per_lane) - 1
        shift = 0
        for key in sorted(self._mux):
            code = (value >> shift) & lane_mask
            if code > len(sources):
                raise SwitchBoxError(
                    f"SB{self.index}: MUX_sel code {code} has no source"
                )
            self._mux[key] = None if code == 0 else sources[code - 1]
            shift += bits_per_lane
        self.raw_mux_writes = getattr(self, "raw_mux_writes", 0) + 1

    def _canonical_sources(self) -> List[SourceRef]:
        srcs = [SourceRef(RIGHT, lane) for lane in range(self.kr)]
        srcs += [SourceRef(LEFT, lane) for lane in range(self.kl)]
        srcs += [SourceRef(MODULE_IN, lane) for lane in range(self.ko)]
        return srcs

    def mux_source(self, direction: str, lane: int) -> Optional[SourceRef]:
        return self._mux[(direction, lane)]

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of output lanes currently owned by channels."""
        total = len(self._owners)
        used = sum(1 for owner in self._owners.values() if owner is not None)
        return used / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"SwitchBox({self.index}, kr={self.kr}, kl={self.kl}, "
            f"ki={self.ki}, ko={self.ko}, util={self.utilization():.0%})"
        )
