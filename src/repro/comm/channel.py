"""Pipelined streaming channels and the fabric that clocks them.

A streaming channel connects one producer interface to one consumer
interface through ``d`` switch boxes.  Data advances one switch-box
register per static-clock cycle; the consumer's feedback FIFO-full signal
travels the opposite way with the same latency.  Both pipelines are
modelled as shift registers owned by the channel -- the physical lanes the
words traverse are reserved exclusively for the channel by the router, so
the per-channel shift is cycle-exact.

:class:`SwitchFabric` is the clocked component that advances every
established channel each static-clock cycle, using the kernel's
sample/commit phases so producers and consumers observe consistent
pre-edge state.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.comm.interfaces import (
    INVALID_WORD,
    ConsumerInterface,
    ProducerInterface,
)
from repro.comm.switchbox import LaneRef
from repro.sim.clock import ClockedComponent


class StreamingChannel:
    """One established producer->consumer channel.

    ``hops`` are the switch-box output lanes the router allocated, in
    upstream-to-downstream order; ``d = len(hops)`` is the pipeline depth in
    both directions (the paper's *number of switches between the two
    communicating PRRs/IOMs*).
    """

    def __init__(
        self,
        channel_id: int,
        producer: ProducerInterface,
        consumer: ConsumerInterface,
        hops: List[LaneRef],
    ) -> None:
        if not hops:
            raise ValueError("a channel must traverse at least one switch box")
        self.channel_id = channel_id
        self.producer = producer
        self.consumer = consumer
        self.hops = list(hops)
        self.d = len(hops)
        # deques: the per-cycle shift is appendleft+pop, no list rebuilds
        self._forward: Deque[Tuple[bool, int]] = deque([INVALID_WORD] * self.d)
        self._backward: Deque[bool] = deque([False] * self.d)
        self._staged_forward: Optional[Tuple[bool, int]] = None
        self._staged_backward: Optional[bool] = None
        self.released = False
        self.words_delivered = 0
        #: fabric cycles the producer had data ready but the arrived
        #: feedback-full (credit) signal held the read back
        self.stall_cycles = 0
        #: fault-injection hooks (repro.faults): a stuck-at credit lane
        #: asserts permanent backpressure at the producer end; a stuck-at-1
        #: data lane ORs its mask onto every word at the delivery register
        self.fault_stuck_full = False
        self.fault_data_or = 0
        #: output-signature watchdog: per-word CRCs recorded at the
        #: pipeline head and checked at delivery, so data corrupted in
        #: transit (not at the producer) is caught
        self.check_signatures = False
        self.signature_mismatches = 0
        self._sent_sigs: Deque[int] = deque()
        self._sig_skip = 0
        consumer.set_backpressure_slack(2 * self.d)

    # ------------------------------------------------------------------
    # clocking (driven by SwitchFabric)
    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Phase 1: deliver the pipeline tail, stage the new head values."""
        if self.released:
            return
        valid, word = self._forward[-1]
        if valid:
            if self.fault_data_or:
                word |= self.fault_data_or
            if self.check_signatures:
                if self._sig_skip:
                    self._sig_skip -= 1
                elif self._sent_sigs:
                    if self._sent_sigs.popleft() != self._signature(word):
                        self.signature_mismatches += 1
            self.consumer.receive(valid, word)
            self.words_delivered += 1
        # feedback that has reached the producer end gates the FIFO read
        backpressured = self._backward[-1] or self.fault_stuck_full
        if (
            backpressured
            and self.producer.fifo_ren
            and not self.producer.fifo.empty
        ):
            self.stall_cycles += 1
        self._staged_forward = self.producer.drive(
            backpressured=backpressured
        )
        if self.check_signatures and self._staged_forward[0]:
            self._sent_sigs.append(self._signature(self._staged_forward[1]))
        self._staged_backward = self.consumer.full_feedback

    def commit(self) -> None:
        """Phase 2: shift both pipelines."""
        staged = self._staged_forward
        if self.released or staged is None:
            return
        forward = self._forward
        forward.appendleft(staged)
        forward.pop()
        backward = self._backward
        backward.appendleft(self._staged_backward)
        backward.pop()
        self._staged_forward = None
        self._staged_backward = None

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Valid words currently inside the pipeline registers."""
        return sum(1 for valid, _ in self._forward if valid)

    def release(self) -> int:
        """Tear the channel down; returns (and drops) the in-flight words.

        The switching methodology of Figure 5 only releases a channel after
        draining, so a non-zero return here indicates a protocol violation
        by the caller.
        """
        lost = self.in_flight
        self.released = True
        self._forward = deque([INVALID_WORD] * self.d)
        self._backward = deque([False] * self.d)
        self._sent_sigs.clear()
        return lost

    def enable_signature_check(self) -> None:
        """Arm the per-word output-signature watchdog.

        Words already in transit were staged without a signature; they
        are skipped so a mid-stream arm never produces false positives.
        """
        if self.check_signatures:
            return
        self.check_signatures = True
        self._sig_skip = self.in_flight
        self._sent_sigs.clear()

    @staticmethod
    def _signature(word: int) -> int:
        return zlib.crc32(word.to_bytes(8, "little"))

    def __repr__(self) -> str:
        path = "->".join(str(h) for h in self.hops)
        state = "released" if self.released else "active"
        return (
            f"StreamingChannel(#{self.channel_id} {self.producer.name}->"
            f"{self.consumer.name} via {path}, {state})"
        )


class SwitchFabric(ClockedComponent):
    """Clocked container advancing all channels of one RSB."""

    def __init__(self, name: str = "fabric") -> None:
        self.name = name
        self.channels: Dict[int, StreamingChannel] = {}
        # insertion-ordered snapshot iterated every cycle; rebuilt on
        # add/remove so sample/commit avoid a dict-view walk per phase
        self._channel_list: List[StreamingChannel] = []

    def add(self, channel: StreamingChannel) -> None:
        self.channels[channel.channel_id] = channel
        self._channel_list = list(self.channels.values())

    def remove(self, channel_id: int) -> None:
        self.channels.pop(channel_id, None)
        self._channel_list = list(self.channels.values())

    def sample(self) -> None:
        for channel in self._channel_list:
            channel.sample()

    def commit(self) -> None:
        for channel in self._channel_list:
            channel.commit()

    @property
    def active_channels(self) -> List[StreamingChannel]:
        return [c for c in self.channels.values() if not c.released]
