"""Producer and consumer module interfaces (paper Figure 2).

Every PRR/IOM connects to its switch box through FIFO-based module
interfaces:

* the **producer interface** holds the module's output FIFO.  When the
  PRSocket ``FIFO_ren`` bit is set and the channel is not back-pressured,
  one word per fabric cycle is read from the FIFO and *bit-extended* with
  the negated FIFO-empty flag as an extra MSB, so only valid words are
  written into the consumer FIFO at the far end;
* the **consumer interface** receives extended words from the channel; the
  MSB acts as the write enable of its FIFO (gated by ``FIFO_wen``).  Words
  arriving while the FIFO is full are discarded -- the feedback FIFO-full
  signal exists precisely so this never happens in normal operation.  The
  feedback asserts while the FIFO's remaining space is at most ``2*d``
  (``d`` = switch boxes on the channel), covering the words already in
  flight in both pipeline directions.

The FIFOs are asynchronous: the module side runs in the PRR's local clock
domain, the channel side in the static-region clock domain.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.fifo import AsyncFifo

#: Sentinel "invalid" extended word (valid MSB clear).
INVALID_WORD: Tuple[bool, int] = (False, 0)


class ProducerInterface:
    """Module output port: FIFO plus valid-bit extension logic."""

    def __init__(
        self,
        name: str,
        width: int = 32,
        depth: int = 512,
        module_domain: str = "lcd",
        fabric_domain: str = "static",
    ) -> None:
        self.name = name
        self.width = width
        self.mask = (1 << width) - 1
        self.fifo = AsyncFifo(
            depth,
            name=f"{name}.fifo",
            write_domain=module_domain,
            read_domain=fabric_domain,
        )
        self.fifo_ren = False  # PRSocket FIFO_ren (Table 1 bit 5)
        self.words_sent = 0
        #: fault-injection hook (repro.faults): OR mask applied to every
        #: word driven onto the channel, modelling logic corrupted by a
        #: configuration-frame upset.  An OR mask (stuck-at-1) corrupts
        #: data words yet keeps the all-ones EOS word intact, so the
        #: Figure 5 drain/flush protocol still terminates on a faulted
        #: module.  Cleared when the frame fault is repaired.
        self.fault_or = 0

    # ------------------------------------------------------------------
    # module (PRR) side
    # ------------------------------------------------------------------
    def module_write(self, word: int) -> bool:
        """Module pushes a word; False when the FIFO is full (module stalls)."""
        fifo = self.fifo
        if len(fifo._data) >= fifo.capacity:  # full: stall, not a drop
            return False
        return fifo.push(word & self.mask)

    @property
    def module_can_write(self) -> bool:
        return not self.fifo.full

    # ------------------------------------------------------------------
    # fabric (channel) side
    # ------------------------------------------------------------------
    def drive(self, backpressured: bool) -> Tuple[bool, int]:
        """Produce one extended word for the channel this fabric cycle.

        Returns ``(valid, word)`` -- the hardware's ``{~empty, data}``
        bit-extension.  Reads the FIFO only when ``FIFO_ren`` is set and the
        delayed feedback-full signal is deasserted.
        """
        fifo = self.fifo
        if not self.fifo_ren or backpressured or not fifo._data:
            return INVALID_WORD
        word = fifo.pop()
        self.words_sent += 1
        if self.fault_or:
            word = (word | self.fault_or) & self.mask
        return (True, word)

    def reset(self) -> None:
        """PRSocket ``FIFO_reset`` semantics."""
        self.fifo.clear()

    def __repr__(self) -> str:
        return (
            f"ProducerInterface({self.name}, {len(self.fifo)}/"
            f"{self.fifo.capacity}, ren={self.fifo_ren})"
        )


class ConsumerInterface:
    """Module input port: FIFO written by the channel, read by the module."""

    def __init__(
        self,
        name: str,
        width: int = 32,
        depth: int = 512,
        module_domain: str = "lcd",
        fabric_domain: str = "static",
    ) -> None:
        self.name = name
        self.width = width
        self.mask = (1 << width) - 1
        self.fifo = AsyncFifo(
            depth,
            name=f"{name}.fifo",
            write_domain=fabric_domain,
            read_domain=module_domain,
        )
        self.fifo_wen = False  # PRSocket FIFO_wen (Table 1 bit 4)
        self.words_received = 0
        self.words_discarded = 0
        #: valid words that arrived while FIFO_wen was low (software bug
        #: indicator: the channel was fed before the consumer was enabled)
        self.words_gated = 0

    # ------------------------------------------------------------------
    # fabric (channel) side
    # ------------------------------------------------------------------
    def receive(self, valid: bool, word: int) -> None:
        """Accept one extended word arriving off the channel."""
        if not valid:
            return
        if not self.fifo_wen:
            self.words_gated += 1
            return
        fifo = self.fifo
        if len(fifo._data) >= fifo.capacity:
            # The paper: "all subsequent data words are discarded" -- the
            # feedback-full signal exists so this path is never exercised.
            self.words_discarded += 1
            return
        fifo.push(word & self.mask)
        self.words_received += 1

    def set_backpressure_slack(self, slack: int) -> None:
        """Configure the 2*d remaining-space threshold at channel setup."""
        self.fifo.almost_full_slack = slack

    @property
    def full_feedback(self) -> bool:
        """The feedback FIFO-full signal launched back up the channel."""
        return self.fifo.almost_full

    # ------------------------------------------------------------------
    # module (PRR) side
    # ------------------------------------------------------------------
    @property
    def module_can_read(self) -> bool:
        return not self.fifo.empty

    def module_read(self) -> Optional[int]:
        """Module pops a word; None when empty (module blocks)."""
        fifo = self.fifo
        if not fifo._data:
            return None
        return fifo.pop()

    def module_peek(self) -> Optional[int]:
        return None if self.fifo.empty else self.fifo.peek()

    def reset(self) -> None:
        self.fifo.clear()
        self.words_discarded = 0

    def __repr__(self) -> str:
        return (
            f"ConsumerInterface({self.name}, {len(self.fifo)}/"
            f"{self.fifo.capacity}, wen={self.fifo_wen})"
        )
