"""Interconnect timing: why the switch boxes are registered.

Section III.B: "data words flow from the producer to the consumer
interface in a pipelined fashion using switch box registers.  This
pipelined communication increases the maximum communication clock
frequency, and thus throughput, by reducing routing and combinational
delays between registers."  Section II attributes Sonic-on-a-Chip's
50 MHz bus to its long (unregistered) routing.

This model quantifies that choice with standard static-timing reasoning
on representative Virtex-4 delays:

* a registered fabric's critical path is one switch-box hop
  (clock-to-out + mux + inter-box routing + setup), independent of the
  channel length d;
* an unregistered (combinational) fabric's critical path accumulates one
  mux+routing segment per traversed switch box, so its maximum clock
  falls as 1/d.
"""

from __future__ import annotations

from typing import List, Tuple

#: Representative Virtex-4 delays (ns).
CLOCK_TO_OUT_NS = 0.6
MUX_DELAY_NS = 0.9
ROUTING_PER_HOP_NS = 7.0
SETUP_NS = 0.5

#: One registered hop's total delay: the pipelined critical path.
REGISTERED_PATH_NS = CLOCK_TO_OUT_NS + MUX_DELAY_NS + ROUTING_PER_HOP_NS + SETUP_NS


def registered_max_frequency_hz(d: int = 1) -> float:
    """Maximum clock of the pipelined switch-box fabric (d-independent)."""
    if d < 1:
        raise ValueError("a channel traverses at least one switch box")
    return 1e9 / REGISTERED_PATH_NS


def combinational_max_frequency_hz(d: int) -> float:
    """Maximum clock when the d-hop path has no intermediate registers."""
    if d < 1:
        raise ValueError("a channel traverses at least one switch box")
    path_ns = (
        CLOCK_TO_OUT_NS + d * (MUX_DELAY_NS + ROUTING_PER_HOP_NS) + SETUP_NS
    )
    return 1e9 / path_ns


def channel_latency_cycles(d: int) -> int:
    """Data latency through an established channel, in fabric cycles.

    One register per switch box plus the consumer-FIFO write edge.
    """
    if d < 1:
        raise ValueError("a channel traverses at least one switch box")
    return d + 1


def frequency_table(max_d: int = 8) -> List[Tuple[int, float, float]]:
    """(d, registered MHz, combinational MHz) series for the ablation."""
    return [
        (
            d,
            registered_max_frequency_hz(d) / 1e6,
            combinational_max_frequency_hz(d) / 1e6,
        )
        for d in range(1, max_d + 1)
    ]
