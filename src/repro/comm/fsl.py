"""Fast simplex links (FSLs) between the MicroBlaze and PRRs/IOMs.

Each PRR/IOM owns a pair of asynchronous FSLs (paper Figure 5): ``r``
flowing towards the MicroBlaze (monitoring data, saved state registers,
completion messages) and ``t`` flowing towards the module (commands,
restored state).  An FSL word carries 32 data bits plus one control bit;
the FIFOs are BlockRAM based, 512 words deep in the prototype, and are
reset through the PRSocket ``FSL_reset`` DCR bit.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.fifo import AsyncFifo

FSL_DEPTH_DEFAULT = 512


class FslLink:
    """One one-way FSL: master writes, slave reads."""

    def __init__(
        self,
        name: str,
        depth: int = FSL_DEPTH_DEFAULT,
        width: int = 32,
        master_domain: str = "master",
        slave_domain: str = "slave",
    ) -> None:
        self.name = name
        self.width = width
        self.mask = (1 << width) - 1
        self.fifo = AsyncFifo(
            depth,
            name=f"{name}.fifo",
            write_domain=master_domain,
            read_domain=slave_domain,
        )
        self._read_waiters: list = []
        self._write_waiters: list = []

    # ------------------------------------------------------------------
    # master side
    # ------------------------------------------------------------------
    def master_write(self, data: int, control: bool = False) -> bool:
        """Non-blocking write; False when the link is full."""
        if self.fifo.full:
            return False
        ok = self.fifo.push((data & self.mask, bool(control)))
        if ok:
            self._notify(self._read_waiters)
        return ok

    @property
    def can_write(self) -> bool:
        return not self.fifo.full

    # ------------------------------------------------------------------
    # slave side
    # ------------------------------------------------------------------
    def slave_read(self) -> Optional[Tuple[int, bool]]:
        """Non-blocking read of ``(data, control)``; None when empty."""
        if self.fifo.empty:
            return None
        word = self.fifo.pop()
        self._notify(self._write_waiters)
        return word

    def slave_peek(self) -> Optional[Tuple[int, bool]]:
        return None if self.fifo.empty else self.fifo.peek()

    @property
    def can_read(self) -> bool:
        return not self.fifo.empty

    def __len__(self) -> int:
        return len(self.fifo)

    # ------------------------------------------------------------------
    # waiters (used by the MicroBlaze model for blocking FSL access)
    # ------------------------------------------------------------------
    def wait_readable(self, callback) -> None:
        """Invoke ``callback`` once when data becomes available."""
        if self.can_read:
            callback()
        else:
            self._read_waiters.append(callback)

    def wait_writable(self, callback) -> None:
        """Invoke ``callback`` once when space becomes available."""
        if self.can_write:
            callback()
        else:
            self._write_waiters.append(callback)

    @staticmethod
    def _notify(waiters: list) -> None:
        pending, waiters[:] = waiters[:], []
        for callback in pending:
            callback()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """PRSocket ``FSL_reset`` semantics."""
        self.fifo.clear()
        self._notify(self._write_waiters)

    def __repr__(self) -> str:
        return f"FslLink({self.name}, {len(self.fifo)}/{self.fifo.capacity})"
