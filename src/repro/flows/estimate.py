"""Analytic resource model, calibrated against paper Section V.B.

The paper reports two synthesis results for the ML401 prototype
(XC4VLX25, one RSB with two PRRs and one IOM, w=32, kr=kl=2, ki=ko=1):

* the complete static region -- MicroBlaze, peripherals and the
  inter-module communication architecture -- used **9,421 slices**;
* the inter-module communication architecture alone used **1,020
  slices**.

The model below derives slice counts from the architectural parameters:

* a switch box registers every input port ((w+1) bits each, 2 FF/slice)
  and multiplexes every output port (a source-count-wide mux per bit,
  built from 4-input LUTs, 2 LUT/slice);
* module interfaces and PRSockets have fixed per-instance costs;
* static peripherals come from a cost table of typical Virtex-4 EDK IP
  sizes, plus one explicit ``misc-glue`` residual that absorbs reset
  logic, pin buffering and synthesis overhead.

Per-instance constants are chosen so the prototype reproduces both
published totals *exactly* (asserted by the test suite); everything then
scales with N, w, kr, kl, ki, ko for the Figure 7 sweeps.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.params import RsbParameters, SystemParameters
from repro.fabric.device import FLIPFLOPS_PER_SLICE, LUTS_PER_SLICE, Virtex4Device
from repro.fabric.resources import ResourceVector
from repro.fabric.slice_macro import macro_slice_cost
from repro.modules.base import HardwareModule
from repro.modules.filters import BiquadIir, FirFilter, MedianFilter, MovingAverage

#: Slices for one module interface's FIFO control + valid-extension logic.
INTERFACE_SLICES = 35
#: Slices for one PRSocket (DCR slave register + fan-out logic).
PRSOCKET_SLICES = 22
#: LUT inputs available for mux trees on Virtex-4 (4-LUT).
LUT_INPUTS = 4

#: Static peripheral cost table (slices), typical Virtex-4 EDK IP sizes.
STATIC_PERIPHERAL_SLICES: Dict[str, int] = {
    "microblaze": 2400,
    "plb_bus": 420,
    "lmb_bram_ctrl": 300,
    "plb2dcr_bridge": 180,
    "xps_hwicap": 700,
    "sysace_cf": 600,
    "ddr_sdram_ctrl": 2100,
    "uart": 240,
    "interrupt_ctrl": 210,
    "xps_timer": 260,
}
#: Per-instance costs that scale with the data-processing region.
FSL_LINK_SLICES = 40
IOM_SLICES = 310
LCD_CLOCKING_SLICES = 35  # BUFGMUX/BUFR hookup + enable sync per PRR
#: Calibration residual: reset/deskew/pin logic and synthesis overhead.
MISC_GLUE_SLICES = 331

#: BRAM18 blocks: one per 512x36 FIFO (interfaces, FSLs), ICAP buffer and
#: MicroBlaze local memory.
BRAM_PER_FIFO = 1
ICAP_BUFFER_BRAM = 2
MICROBLAZE_BRAM = 8


def _slices_for_ff(flipflops: int) -> int:
    return math.ceil(flipflops / FLIPFLOPS_PER_SLICE)


def _slices_for_luts(luts: int) -> int:
    return math.ceil(luts / LUTS_PER_SLICE)


def switchbox_slices(params: RsbParameters) -> int:
    """Slices for one switch box of the given specialisation."""
    word = params.channel_width + 1  # data + valid bit
    inputs = params.kr + params.kl + params.ko
    outputs = params.kr + params.kl + params.ki
    register_ff = inputs * word
    # each output bit needs a (inputs):1 mux, built as a tree of 4-LUTs
    mux_luts_per_bit = max(1, math.ceil((inputs - 1) / (LUT_INPUTS - 1)))
    mux_luts = outputs * word * mux_luts_per_bit
    return _slices_for_ff(register_ff) + _slices_for_luts(mux_luts)


def comm_architecture_slices(params: RsbParameters) -> int:
    """Slices for one RSB's complete inter-module communication
    architecture: switch boxes, module interfaces and PRSockets."""
    boxes = params.attachment_count * switchbox_slices(params)
    interfaces = (
        params.attachment_count
        * (params.ki + params.ko)
        * INTERFACE_SLICES
    )
    sockets = params.attachment_count * PRSOCKET_SLICES
    return boxes + interfaces + sockets


def comm_architecture_resources(params: RsbParameters) -> ResourceVector:
    """Full resource vector (slices + BRAM) of one RSB's comm fabric."""
    fifo_count = params.attachment_count * (params.ki + params.ko)
    return ResourceVector(
        slices=comm_architecture_slices(params),
        bram18=fifo_count * BRAM_PER_FIFO,
    )


def static_region_resources(params: SystemParameters) -> ResourceVector:
    """Everything outside the PRRs: controlling region + comm fabric.

    Reproduces the paper's 9,421-slice figure for the prototype.
    """
    slices = sum(STATIC_PERIPHERAL_SLICES.values()) + MISC_GLUE_SLICES
    bram = ICAP_BUFFER_BRAM + MICROBLAZE_BRAM
    bufg = 2  # system clock + feedback
    dcm = 1
    bufr = 0
    for rsb in params.rsbs:
        comm = comm_architecture_resources(rsb)
        slices += comm.slices
        bram += comm.bram18
        # FSL pair per attachment
        slices += rsb.attachment_count * 2 * FSL_LINK_SLICES
        bram += rsb.attachment_count * 2 * BRAM_PER_FIFO
        slices += rsb.num_ioms * IOM_SLICES
        for _ in range(rsb.num_prrs):
            signals = (rsb.channel_width + 1) * (rsb.ki + rsb.ko) + 8
            slices += macro_slice_cost(signals)
            slices += LCD_CLOCKING_SLICES
            bufg += 1  # BUFGMUX per PRR
            bufr += 1
    return ResourceVector(
        slices=slices, bram18=bram, bufr=bufr, bufg=bufg, dcm=dcm
    )


def system_resource_report(
    params: SystemParameters, device: Virtex4Device
) -> Dict[str, object]:
    """Structured report mirroring the paper's Section V.B paragraph."""
    static = static_region_resources(params)
    comm_total = sum(
        comm_architecture_slices(rsb) for rsb in params.rsbs
    )
    prr_slices = sum(rsb.num_prrs * rsb.prr_slices for rsb in params.rsbs)
    return {
        "device": device.name,
        "static_slices": static.slices,
        "static_utilization": static.slices / device.slices,
        "comm_architecture_slices": comm_total,
        "prr_slices": prr_slices,
        "total_slices": static.slices + prr_slices,
        "total_utilization": (static.slices + prr_slices) / device.slices,
        "bram18": static.bram18,
        "static_resources": static,
        "fits": static.slices + prr_slices <= device.slices,
    }


# ----------------------------------------------------------------------
# hardware-module size heuristics (application flow "synthesis")
# ----------------------------------------------------------------------
#: Base slices for any module wrapper (port FSMs + state shift logic).
MODULE_WRAPPER_SLICES = 48
#: Slices per FIR tap (MACC distributed over slices; DSP48s not counted).
FIR_TAP_SLICES = 34
BIQUAD_SLICES = 220
WINDOW_SLICES_PER_WORD = 40
DEFAULT_MODULE_SLICES = 90


def module_slice_estimate(module: HardwareModule) -> int:
    """Heuristic slice count for a behavioural module (the substitute for
    running XST over its RTL)."""
    if isinstance(module, FirFilter):
        return MODULE_WRAPPER_SLICES + FIR_TAP_SLICES * len(module.taps)
    if isinstance(module, BiquadIir):
        return MODULE_WRAPPER_SLICES + BIQUAD_SLICES
    if isinstance(module, (MovingAverage, MedianFilter)):
        return MODULE_WRAPPER_SLICES + WINDOW_SLICES_PER_WORD * module.window
    return MODULE_WRAPPER_SLICES + DEFAULT_MODULE_SLICES
