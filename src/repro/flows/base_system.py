"""The base system flow (paper Figure 6, right side).

System designers run this flow once to produce a VAPRES base system:

1. **base system specification** -- choose the architectural parameters
   (:class:`~repro.core.params.SystemParameters`);
2. **base system design** -- floorplan the PRRs and generate the system
   definition files (MHS, MSS, UCF);
3. **synthesis & implementation** -- here: run the calibrated resource
   model, check the design fits the device, and record the "static
   bitstream" (a build manifest the application flow targets).

The result, :class:`BaseSystemBuild`, can instantiate a live
:class:`~repro.core.system.VapresSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.params import SystemParameters
from repro.core.system import VapresSystem
from repro.fabric.device import Virtex4Device, get_board
from repro.fabric.floorplan import Floorplan, auto_floorplan
from repro.fabric.resources import ResourceVector
from repro.flows.estimate import static_region_resources, system_resource_report
from repro.flows.sysdef import generate_mhs, generate_mss, generate_ucf


class FlowError(Exception):
    """Raised when a flow step fails (overfull device, bad floorplan...)."""


@dataclass
class BaseSystemBuild:
    """The artefacts of one base system flow run."""

    params: SystemParameters
    device: Virtex4Device
    floorplan: Floorplan
    mhs: str
    mss: str
    ucf: str
    static_resources: ResourceVector
    report: Dict[str, object] = field(default_factory=dict)

    @property
    def static_bitstream_name(self) -> str:
        return f"{self.params.name}_static.bit"

    def instantiate(self) -> VapresSystem:
        """Bring up a live system on this build's floorplan."""
        return VapresSystem(self.params, floorplan=self.floorplan)

    def summary(self) -> str:
        report = self.report
        return "\n".join(
            [
                f"base system {self.params.name!r} on {self.device.name}:",
                f"  static region : {report['static_slices']} slices "
                f"({report['static_utilization']:.1%} of device)",
                f"  comm fabric   : {report['comm_architecture_slices']} slices",
                f"  PRR area      : {report['prr_slices']} slices",
                f"  BRAM18        : {report['bram18']}",
                f"  fits device   : {report['fits']}",
            ]
        )


class BaseSystemFlow:
    """Runs the three steps of the base system flow."""

    def __init__(self, params: SystemParameters) -> None:
        self.params = params
        self.board = get_board(params.board)
        self.device = self.board.device

    # ------------------------------------------------------------------
    def design_floorplan(self) -> Floorplan:
        """Step 2a: place every PRR under the clock-region constraints."""
        requirements = []
        regions = 1
        boundary = 0
        for rsb in self.params.rsbs:
            regions = max(regions, rsb.regions_per_prr)
            for index in range(rsb.num_prrs):
                requirements.append((f"{rsb.name}.prr{index}", rsb.prr_slices))
            boundary = max(
                boundary, (rsb.channel_width + 1) * (rsb.ki + rsb.ko) + 8
            )
        return auto_floorplan(
            self.device,
            requirements,
            regions_per_prr=regions,
            boundary_signals=boundary,
        )

    def run(
        self, floorplan: Optional[Floorplan] = None, verify: bool = True
    ) -> BaseSystemBuild:
        """Run the complete flow; raises :class:`FlowError` on misfits.

        Unless ``verify=False``, the static design-rule checker
        (:mod:`repro.verify`) runs over the floorplan in strict mode, so a
        hand-built floorplan that slipped past placement-time validation
        raises :class:`~repro.verify.diagnostics.VerificationError` here
        rather than misbehaving in simulation.
        """
        floorplan = floorplan or self.design_floorplan()
        report = system_resource_report(self.params, self.device)
        if not report["fits"]:
            raise FlowError(
                f"design needs {report['total_slices']} slices; "
                f"{self.device.name} has {self.device.slices}"
            )
        static = static_region_resources(self.params)
        if floorplan.static_slices_available < static.slices:
            raise FlowError(
                f"floorplan leaves {floorplan.static_slices_available} "
                f"slices outside PRRs but the static region needs "
                f"{static.slices}"
            )
        build = BaseSystemBuild(
            params=self.params,
            device=self.device,
            floorplan=floorplan,
            mhs=generate_mhs(self.params),
            mss=generate_mss(self.params),
            ucf=generate_ucf(floorplan),
            static_resources=static,
            report=report,
        )
        if verify:
            # deferred import: verify imports flow estimate helpers
            from repro.verify.runner import verify_build

            build.report["verify"] = verify_build(build, strict=True)
        return build
