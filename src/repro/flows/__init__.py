"""VAPRES design and implementation flows (paper Section IV, Figure 6).

* :mod:`repro.flows.estimate` -- the analytic resource model calibrated
  against the paper's Section V.B results;
* :mod:`repro.flows.sysdef` -- system definition file generators (MHS,
  MSS, UCF) mirroring the Xilinx EDK artefacts the base system flow emits;
* :mod:`repro.flows.base_system` -- the base system flow: architectural
  specialisation -> floorplan -> system definition files -> "synthesis"
  (resource estimation + static bitstream record);
* :mod:`repro.flows.application` -- the application flow: KPN
  decomposition, module wrapper generation, per-(module, PRR) partial
  bitstream generation and registration.
"""

from repro.flows.application import ApplicationBuild, ApplicationFlow
from repro.flows.base_system import BaseSystemBuild, BaseSystemFlow, FlowError
from repro.flows.estimate import (
    comm_architecture_resources,
    comm_architecture_slices,
    module_slice_estimate,
    static_region_resources,
    switchbox_slices,
    system_resource_report,
)
from repro.flows.sysdef import generate_mhs, generate_mss, generate_ucf

__all__ = [
    "ApplicationBuild",
    "ApplicationFlow",
    "BaseSystemBuild",
    "BaseSystemFlow",
    "FlowError",
    "comm_architecture_resources",
    "comm_architecture_slices",
    "generate_mhs",
    "generate_mss",
    "generate_ucf",
    "module_slice_estimate",
    "static_region_resources",
    "switchbox_slices",
    "system_resource_report",
]
