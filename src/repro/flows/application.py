"""The application flow (paper Figure 6, left side).

Application designers target an existing base system:

1. **decomposition** -- express the application as a KPN of hardware
   modules plus software modules;
2. **hardware module flow** -- "synthesize" each module (slice estimate),
   verify it fits the base system's PRRs, and generate one partial
   bitstream per (module, PRR) pair;
3. **software module flow** -- collect the MicroBlaze software
   (generators) that orchestrates the application through the VAPRES API.

Only module logic is processed; the base design is untouched, which is
the isolation between flows the paper credits with cutting iteration
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.core.kpn import KahnProcessNetwork
from repro.core.system import VapresSystem
from repro.flows.base_system import BaseSystemBuild, FlowError
from repro.flows.estimate import module_slice_estimate
from repro.pr.bitstream import PartialBitstream, bitstream_for_rect

SoftwareFactory = Callable[..., Generator]


@dataclass
class ApplicationBuild:
    """Artefacts of one application flow run."""

    name: str
    kpn: KahnProcessNetwork
    module_slices: Dict[str, int]
    bitstreams: List[PartialBitstream] = field(default_factory=list)
    software: Dict[str, SoftwareFactory] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [f"application {self.name!r}:"]
        for module, slices in sorted(self.module_slices.items()):
            count = sum(1 for b in self.bitstreams if b.module_name == module)
            lines.append(
                f"  {module}: {slices} slices, {count} partial bitstream(s)"
            )
        lines.append(f"  software modules: {sorted(self.software) or 'none'}")
        return "\n".join(lines)


class ApplicationFlow:
    """Builds an application against a base system build."""

    def __init__(self, base: BaseSystemBuild) -> None:
        self.base = base
        self._software: Dict[str, SoftwareFactory] = {}

    def add_software_module(self, name: str, factory: SoftwareFactory) -> None:
        self._software[name] = factory

    # ------------------------------------------------------------------
    def run(
        self,
        kpn: KahnProcessNetwork,
        target_prrs: Optional[Dict[str, List[str]]] = None,
        verify: bool = True,
    ) -> ApplicationBuild:
        """Run the hardware module flow for every module node.

        ``target_prrs`` optionally restricts which PRRs each module may
        occupy (fewer bitstreams, less CF space); default is every PRR.
        Unless ``verify=False``, the base system's floorplan is re-checked
        by the static DRC (:mod:`repro.verify`) in strict mode first --
        the application flow must never target an ill-formed base system.
        """
        kpn.validate()
        if verify:
            # deferred import: verify imports flow estimate helpers
            from repro.verify.runner import verify_build

            verify_build(self.base, strict=True)
        prr_names = list(self.base.floorplan.prrs)
        module_slices: Dict[str, int] = {}
        bitstreams: List[PartialBitstream] = []
        for node in kpn.module_nodes():
            module = node.factory()
            slices = module_slice_estimate(module)
            module_slices[node.name] = slices
            targets = (target_prrs or {}).get(node.name, prr_names)
            for prr_name in targets:
                placement = self.base.floorplan.prrs.get(prr_name)
                if placement is None:
                    raise FlowError(f"unknown PRR {prr_name!r}")
                if slices > placement.slices:
                    raise FlowError(
                        f"module {node.name!r} needs {slices} slices but PRR "
                        f"{prr_name!r} only provides {placement.slices}; "
                        "enlarge the PRR or span multiple PRRs (Section IV.A)"
                    )
                bitstreams.append(
                    bitstream_for_rect(
                        node.name,
                        prr_name,
                        placement.rect,
                        metadata={"module_slices": slices},
                    )
                )
        return ApplicationBuild(
            name=kpn.name,
            kpn=kpn,
            module_slices=module_slices,
            bitstreams=bitstreams,
            software=dict(self._software),
        )

    # ------------------------------------------------------------------
    def install(
        self, build: ApplicationBuild, system: VapresSystem
    ) -> None:
        """Register the build's bitstreams and factories on a live system."""
        for node in build.kpn.module_nodes():
            system.repository.register_factory(node.name, node.factory)
        for bitstream in build.bitstreams:
            if not system.repository.has(
                bitstream.module_name, bitstream.prr_name
            ):
                system.repository.register(bitstream)

    def fragmentation_report(
        self, build: ApplicationBuild
    ) -> Dict[str, Tuple[int, int, float]]:
        """Per-module ``(module_slices, prr_slices, wasted_fraction)`` for
        the first PRR target -- the paper's resource fragmentation metric."""
        report = {}
        for module, slices in build.module_slices.items():
            first = next(
                b for b in build.bitstreams if b.module_name == module
            )
            prr_slices = self.base.floorplan.prrs[first.prr_name].slices
            wasted = (prr_slices - slices) / prr_slices
            report[module] = (slices, prr_slices, wasted)
        return report
