"""VAPRES: A Virtual Architecture for Partially Reconfigurable Embedded
Systems -- behavioural reproduction of Jara-Berrocal & Gordon-Ross,
DATE 2010.

Quick start::

    from repro import VapresSystem, SystemParameters
    from repro.modules import Iom, FirFilter
    from repro.modules.sources import noisy_sine

    system = VapresSystem(SystemParameters.prototype())
    system.attach_iom("rsb0.iom0", Iom("io", source=noisy_sine(count=500)))
    system.place_module_directly(
        FirFilter.from_coefficients("lp", [0.25, 0.5, 0.25]), "rsb0.prr0"
    )
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.run_for_cycles(2000)

Package map (see DESIGN.md for the full inventory):

========================  ==============================================
``repro.sim``             event kernel, clocks, FIFOs
``repro.fabric``          Virtex-4 device model and floorplanning
``repro.comm``            switch boxes, module interfaces, channels, FSLs
``repro.control``         MicroBlaze, DCR, PRSockets, ICAP, memories
``repro.pr``              bitstreams, repository, reconfiguration engine
``repro.modules``         hardware-module library and IOMs
``repro.core``            system assembly, Table 2 API, switching, KPNs
``repro.flows``           base-system and application design flows
``repro.baselines``       related-work comparison architectures
``repro.analysis``        metrics, traces, report tables
========================  ==============================================
"""

from repro.core.params import RsbParameters, SystemParameters
from repro.core.system import VapresSystem

__version__ = "1.0.0"

__all__ = ["RsbParameters", "SystemParameters", "VapresSystem", "__version__"]
