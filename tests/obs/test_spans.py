"""Tracer behaviour: nesting, mismatch detection, ring bounds."""

import pytest

from repro.obs.spans import BEGIN, END, INSTANT, SpanError, Tracer


def test_nested_spans_record_depth_and_order():
    clock = {"now": 0}
    tracer = Tracer(time_fn=lambda: clock["now"], wall_clock=False)
    tracer.begin("outer", category="test")
    clock["now"] = 10
    tracer.begin("inner")
    clock["now"] = 20
    tracer.end("inner")
    clock["now"] = 30
    tracer.end("outer")
    kinds = [(e.kind, e.name, e.depth) for e in tracer.events]
    assert kinds == [
        (BEGIN, "outer", 0),
        (BEGIN, "inner", 1),
        (END, "inner", 1),
        (END, "outer", 0),
    ]
    assert [e.time_ps for e in tracer.events] == [0, 10, 20, 30]
    assert [e.seq for e in tracer.events] == [0, 1, 2, 3]


def test_mismatched_end_raises():
    tracer = Tracer()
    tracer.begin("a")
    with pytest.raises(SpanError, match="mismatched end"):
        tracer.end("b")
    tracer.end("a")
    with pytest.raises(SpanError, match="no open span"):
        tracer.end("a")


def test_end_without_name_closes_innermost():
    tracer = Tracer()
    tracer.begin("outer")
    tracer.begin("inner")
    tracer.end()
    assert tracer.open_spans() == ("outer",)


def test_end_if_open_is_lenient():
    tracer = Tracer()
    assert tracer.end_if_open("ghost") is False
    tracer.begin("a")
    assert tracer.end_if_open("b") is False
    assert tracer.end_if_open("a") is True
    assert tracer.open_spans() == ()


def test_tracks_are_independent():
    tracer = Tracer()
    tracer.begin("x", track="t1")
    tracer.begin("y", track="t2")
    tracer.end("y", track="t2")
    assert tracer.open_spans("t1") == ("x",)
    assert tracer.open_spans("t2") == ()
    assert tracer.tracks() == ["t1", "t2"]


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.begin("a")
    tracer.instant("b")
    tracer.end("a")  # no SpanError either: disabled path is inert
    with tracer.span("c"):
        pass
    assert len(tracer) == 0
    assert tracer.dropped_events == 0


def test_ring_buffer_caps_memory_and_counts_drops():
    tracer = Tracer(capacity=8, wall_clock=False)
    for index in range(30):
        tracer.instant(f"e{index}")
    assert len(tracer) == 8
    assert tracer.dropped_events == 22
    # oldest evicted, newest retained
    assert tracer.events[0].name == "e22"
    assert tracer.events[-1].name == "e29"


def test_configure_shrinks_and_resets_stacks():
    tracer = Tracer(capacity=16)
    tracer.begin("open")
    for index in range(10):
        tracer.instant(f"e{index}")
    tracer.configure(capacity=4)
    assert len(tracer) == 4
    assert tracer.dropped_events == 7  # 11 recorded, 4 kept
    # stacks were cleared: a bare end has nothing to close
    with pytest.raises(SpanError):
        tracer.end()


def test_capacity_must_be_positive():
    with pytest.raises(SpanError):
        Tracer(capacity=0)
    with pytest.raises(SpanError):
        Tracer().configure(capacity=-1)


def test_span_context_manager_and_backdated_begin():
    clock = {"now": 100}
    tracer = Tracer(time_fn=lambda: clock["now"], wall_clock=False)
    with tracer.span("work", attrs={"k": 1}):
        clock["now"] = 200
    begin, end = tracer.events
    assert (begin.kind, begin.time_ps, begin.attrs) == (BEGIN, 100, {"k": 1})
    assert (end.kind, end.time_ps) == (END, 200)
    tracer.begin("late", time_ps=150)
    assert tracer.events[-1].time_ps == 150


def test_instant_records_current_depth():
    tracer = Tracer()
    tracer.instant("top")
    tracer.begin("outer")
    tracer.instant("in-span")
    assert tracer.events[0].depth == 0
    assert tracer.events[0].kind == INSTANT
    assert tracer.events[2].depth == 1
