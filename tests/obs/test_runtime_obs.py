"""Observability wired through the kernel, executors, telemetry and CLI."""

import json

import pytest

from repro.__main__ import main
from repro.obs.export import load_chrome_trace
from repro.runtime import (
    ExecutorConfig,
    FleetExecutor,
    SourceSpec,
    StreamJob,
)
from repro.runtime.telemetry import (
    SCHEMA_VERSION,
    FleetReport,
    JobReport,
    TelemetrySchemaError,
)
from repro.sim.kernel import Simulator


# ----------------------------------------------------------------------
# kernel integration (satellite: bounded Simulator trace)
# ----------------------------------------------------------------------
def test_simulator_trace_is_ring_buffered():
    sim = Simulator(trace_capacity=16)
    for index in range(50):
        sim.log("cat", f"m{index}", n=index)
    trace = sim.trace
    assert len(trace) == 16
    assert sim.dropped_events == 34
    assert trace[0].message == "m34"
    assert trace[-1].message == "m49"
    # stable (time, seq) total order survives the shim
    assert [t.seq for t in trace] == sorted(t.seq for t in trace)


def test_simulator_set_tracing_capacity():
    sim = Simulator()
    assert sim.trace_capacity == Simulator.DEFAULT_TRACE_CAPACITY
    sim.set_tracing(True, capacity=8)
    assert sim.trace_capacity == 8
    sim.set_tracing(False)
    sim.log("cat", "ignored")
    assert sim.trace == []
    assert sim.trace_by_category("cat") == []


# ----------------------------------------------------------------------
# telemetry schema (satellite)
# ----------------------------------------------------------------------
def test_job_and_fleet_reports_carry_schema_version():
    report = FleetReport(jobs=[JobReport(name="j")])
    data = report.to_dict()
    assert data["schema_version"] == SCHEMA_VERSION
    assert data["jobs"][0]["schema_version"] == SCHEMA_VERSION
    restored = FleetReport.from_json(report.to_json())
    assert restored.jobs[0].name == "j"


def test_loaders_reject_unknown_schema_version():
    data = FleetReport().to_dict()
    data["schema_version"] = 99
    with pytest.raises(TelemetrySchemaError, match="schema_version=99"):
        FleetReport.from_dict(data)
    with pytest.raises(TelemetrySchemaError):
        JobReport.from_dict({"name": "x", "schema_version": 0})


# ----------------------------------------------------------------------
# fleet merge determinism
# ----------------------------------------------------------------------
def _specs():
    return [
        StreamJob(name=f"job{i}",
                  source=SourceSpec("ramp", count=40 + 10 * i))
        for i in range(3)
    ]


def _run(workers: int) -> FleetReport:
    from dataclasses import replace

    from repro.core.params import SystemParameters

    params = replace(SystemParameters.prototype(), pr_speedup=20000.0)
    config = ExecutorConfig(quantum_us=10.0, max_us=5000.0)
    fleet = FleetExecutor(
        workers=workers, params=params, config=config, use_processes=False
    )
    return fleet.run(_specs())


def test_fleet_metrics_merge_is_worker_count_invariant():
    one, two = _run(1), _run(2)
    for report in (one, two):
        assert report.metrics.value("repro_icap_transfers_total") == 3
    t1 = [(e.kind, e.name, e.track, e.time_ps) for e in one.span_events]
    t2 = [(e.kind, e.name, e.track, e.time_ps) for e in two.span_events]
    assert t1 == t2
    assert one.jobs[0].span_track == "job/job0"
    # shared-infrastructure tracks were qualified per job in fleet mode
    tracks = {e.track for e in one.span_events}
    assert any(t.startswith("job/job0/icap") for t in tracks)


def test_job_lifecycle_spans_present():
    report = _run(1)
    by_job = [
        (e.kind, e.name) for e in report.span_events
        if e.track == "job/job1"
    ]
    assert ("I", "queued") in by_job
    assert ("I", "admitted") in by_job
    assert ("B", "place") in by_job
    assert ("B", "run") in by_job
    assert ("I", "done") in by_job
    # every begun span was closed
    assert sum(1 for k, _ in by_job if k == "B") == sum(
        1 for k, _ in by_job if k == "E"
    )


# ----------------------------------------------------------------------
# CLI round-trips
# ----------------------------------------------------------------------
@pytest.fixture()
def tiny_jobfile(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps({
        "system": {"preset": "prototype", "pr_speedup": 20000.0},
        "mode": "fleet",
        "executor": {"quantum_us": 10.0, "max_us": 5000.0},
        "jobs": [
            {"name": "a", "source": {"kind": "ramp", "count": 60}},
            {"name": "b", "stages": ["abs"],
             "source": {"kind": "sine", "count": 80}},
        ],
    }))
    return str(path)


def test_serve_trace_out_round_trip(tiny_jobfile, tmp_path, capsys):
    t1, t2 = tmp_path / "t1.json", tmp_path / "t2.json"
    assert main(["serve", tiny_jobfile, "--trace-out", str(t1)]) == 0
    assert main(["serve", tiny_jobfile, "--trace-out", str(t2)]) == 0
    # acceptance: byte-identical across runs
    assert t1.read_bytes() == t2.read_bytes()
    records = load_chrome_trace(t1)
    payload = [r for r in records if r["ph"] != "M"]
    assert payload
    for record in payload:
        assert record["ph"] in ("B", "E", "i")
        assert record["pid"] == 1 and record["tid"] >= 1
    assert [r["ts"] for r in payload] == sorted(r["ts"] for r in payload)
    capsys.readouterr()


def test_serve_metrics_out(tiny_jobfile, tmp_path, capsys):
    m = tmp_path / "m.prom"
    assert main(["serve", tiny_jobfile, "--metrics-out", str(m)]) == 0
    text = m.read_text()
    assert "# TYPE repro_icap_transfers_total counter" in text
    assert "repro_icap_transfers_total 2" in text
    assert "repro_executor_quantum_seconds_count" in text
    capsys.readouterr()


def test_obs_subcommand_renders_saved_trace(tiny_jobfile, tmp_path, capsys):
    t = tmp_path / "t.json"
    assert main(["serve", tiny_jobfile, "--trace-out", str(t)]) == 0
    capsys.readouterr()
    assert main(["obs", str(t), "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "trace timeline" in out
    assert len([l for l in out.splitlines() if "|" in l]) <= 6  # header + 5
    assert main(["obs", str(t), "--summary"]) == 0
    assert "span path" in capsys.readouterr().out
    assert main(["obs", str(t), "--track", "job/a"]) == 0
    out = capsys.readouterr().out
    assert "job/b" not in out


def test_obs_subcommand_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["obs", str(bad)]) == 2
    assert "cannot render" in capsys.readouterr().err
