"""Metrics registry: counters, gauges, histogram edges, merge semantics."""

import pickle

import pytest

from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsError, MetricsRegistry


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("repro_things_total")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(MetricsError):
        counter.inc(-1)
    gauge = registry.gauge("repro_depth")
    gauge.set(3)
    gauge.set(1.5)
    assert gauge.value == 1.5


def test_get_or_create_is_idempotent_and_type_checked():
    registry = MetricsRegistry()
    a = registry.counter("x", labels={"k": "v"})
    assert registry.counter("x", labels={"k": "v"}) is a
    # same name, different labels: distinct series
    b = registry.counter("x", labels={"k": "w"})
    assert b is not a
    with pytest.raises(MetricsError):
        registry.gauge("x", labels={"k": "v"})


def test_histogram_bucket_edges_use_le_semantics():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(1, 2, 4))
    for value in (0.5, 1, 1.0001, 2, 4, 4.0001, 100):
        hist.observe(value)
    # counts per (le=1, le=2, le=4, +Inf): boundary values land in the
    # bucket whose bound they equal (Prometheus le semantics)
    assert hist.counts == [2, 2, 1, 2]
    assert hist.count == 7
    cumulative = hist.cumulative()
    assert cumulative[-1] == ("+Inf", 7)
    assert [c for _b, c in cumulative] == [2, 4, 5, 7]


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(MetricsError):
        registry.histogram("h", buckets=(2, 1))
    with pytest.raises(MetricsError):
        registry.histogram("h2", buckets=())


def test_merge_adds_counters_and_histograms_takes_max_gauge():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("c").inc(2)
    b.counter("c").inc(5)
    a.gauge("g").set(7)
    b.gauge("g").set(3)
    a.histogram("h", buckets=(1, 10)).observe(0.5)
    b.histogram("h", buckets=(1, 10)).observe(5)
    b.counter("only_b").inc()
    a.merge(b)
    assert a.value("c") == 7
    assert a.value("g") == 7
    assert a.value("only_b") == 1
    merged = a.histogram("h", buckets=(1, 10))
    assert merged.counts == [1, 1, 0]


def test_merge_rejects_mismatched_histogram_buckets():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.histogram("h", buckets=(1, 2))
    b.histogram("h", buckets=(1, 3))
    with pytest.raises(MetricsError):
        a.merge(b)


def test_registry_is_picklable_for_fleet_workers():
    registry = MetricsRegistry()
    registry.counter("c", labels={"job": "a"}).inc(3)
    registry.histogram("h").observe(17)
    clone = pickle.loads(pickle.dumps(registry))
    assert clone.value("c", labels={"job": "a"}) == 3
    merged = MetricsRegistry()
    merged.merge(clone)
    assert merged.value("c", labels={"job": "a"}) == 3


def test_prometheus_text_output():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", labels={"kind": "a"}).inc(2)
    registry.gauge("repro_depth").set(4)
    registry.histogram("repro_lat", buckets=(1, 2)).observe(1.5)
    text = prometheus_text(registry)
    assert "# TYPE repro_x_total counter" in text
    assert 'repro_x_total{kind="a"} 2' in text
    assert "repro_depth 4" in text
    assert 'repro_lat_bucket{le="2"} 1' in text
    assert 'repro_lat_bucket{le="+Inf"} 1' in text
    assert "repro_lat_sum 1.5" in text
    assert "repro_lat_count 1" in text
    assert prometheus_text(None).startswith("#")
