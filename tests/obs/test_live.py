"""Unit tests for the live observability plane (repro.obs.live).

Trace identity, snapshot aggregation semantics, the flight-recorder
ring, canonical trace stitching, Prometheus text conformance, and the
PRR free-run fragmentation gauges the pool binds per device.
"""

import json
import random

from repro.core.params import RsbParameters, SystemParameters
from repro.obs import (
    DeviceSnapshot,
    FlightRecorder,
    MetricsRegistry,
    SnapshotAggregator,
    SpanEvent,
    TraceContext,
    dump_chrome_trace,
    prometheus_text,
    qualify_tracks,
    stitch_chrome_trace_files,
    stitch_span_events,
    stitched_summary,
    tag_events,
    trace_id_for,
)
from repro.obs.live import copy_registry, dump_stitched_trace
from repro.runtime.admission import AdmissionController
from repro.runtime.jobs import Job, SourceSpec, StageSpec, StreamJob


def ev(kind, name, track, time_ps=0, seq=0, attrs=None):
    return SpanEvent(
        kind=kind, name=name, category="t", track=track,
        time_ps=time_ps, seq=seq, attrs=attrs or {},
    )


# ----------------------------------------------------------------------
# trace identity
# ----------------------------------------------------------------------
def test_trace_id_is_deterministic_and_name_derived():
    assert trace_id_for("job-a") == trace_id_for("job-a")
    assert trace_id_for("job-a") != trace_id_for("job-b")
    assert len(trace_id_for("x")) == 8
    int(trace_id_for("x"), 16)  # hex


def test_trace_context_attrs_omit_empty_fields():
    full = TraceContext("abc", tenant="t1", parent="pool/admission")
    assert full.to_attrs() == {
        "trace_id": "abc", "tenant": "t1", "parent": "pool/admission",
    }
    assert TraceContext("abc").to_attrs() == {"trace_id": "abc"}


def test_tag_events_copies_and_respects_existing_ids():
    original = [
        ev("I", "a", "tr"),
        ev("I", "b", "tr", attrs={"trace_id": "keep"}),
    ]
    tagged = tag_events(original, "new")
    assert tagged[0].attrs["trace_id"] == "new"
    assert tagged[1].attrs["trace_id"] == "keep"
    assert original[0].attrs == {}  # untouched


def test_qualify_tracks_prefixes_shared_infrastructure():
    events = [ev("I", "a", "icap"), ev("I", "b", "job/j/x")]
    out = qualify_tracks(events, "j")
    assert out[0].track == "job/j/icap"
    assert out[1].track == "job/j/x"


# ----------------------------------------------------------------------
# snapshot aggregation
# ----------------------------------------------------------------------
def reg_with(counter, value):
    reg = MetricsRegistry()
    reg.counter(counter).inc(value)
    return reg


def test_copy_registry_is_a_point_in_time_copy():
    source = MetricsRegistry()
    source.counter("c").inc(3)
    snap = copy_registry(source)
    source.counter("c").inc(10)
    assert snap.value("c") == 3
    assert source.value("c") == 13


def test_aggregator_live_replaces_and_final_merges_once():
    agg = SnapshotAggregator()
    # two periodic snapshots from the same device must not double-count
    agg.ingest(DeviceSnapshot(0, 1, 0, False, metrics=reg_with("c", 5)))
    agg.ingest(DeviceSnapshot(0, 1, 1, False, metrics=reg_with("c", 7)))
    assert agg.merged().value("c") == 7
    assert agg.live_devices() == [0]
    # the final replaces the live entry (never adds to it)
    agg.ingest(DeviceSnapshot(0, 1, 2, True, metrics=reg_with("c", 9)))
    assert agg.merged().value("c") == 9
    assert agg.live_devices() == []
    # a second device's finished work adds
    agg.ingest(DeviceSnapshot(1, 2, 0, True, metrics=reg_with("c", 1)))
    assert agg.merged().value("c") == 10


def test_aggregator_discard_live_on_worker_error():
    agg = SnapshotAggregator()
    agg.ingest(DeviceSnapshot(0, 1, 0, False, metrics=reg_with("c", 5)))
    agg.discard_live(0)
    assert agg.merged().value("c") == 0
    assert agg.live_devices() == []


def test_aggregator_merged_does_not_mutate_base():
    agg = SnapshotAggregator()
    agg.ingest(DeviceSnapshot(0, 1, 0, True, metrics=reg_with("c", 2)))
    base = reg_with("c", 1)
    merged = agg.merged(base=base)
    assert merged.value("c") == 3
    assert base.value("c") == 1


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
def test_flight_recorder_ring_evicts_oldest_and_counts_drops():
    rec = FlightRecorder(3, capacity=4)
    for i in range(10):
        rec.record("tick", i=i)
    assert len(rec) == 4
    dump = rec.dump("test")
    assert dump["device"] == 3
    assert dump["recorded"] == 10
    assert dump["dropped"] == 6
    assert [e["i"] for e in dump["events"]] == [6, 7, 8, 9]


def test_flight_recorder_dump_is_byte_stable():
    def build():
        rec = FlightRecorder(0, capacity=8)
        rec.record("quarantined", prr="rsb0.prr1")
        rec.record_span(ev("B", "execute", "job/j/pool", time_ps=10))
        return rec.dump_json("same-reason")

    assert build() == build()
    parsed = json.loads(build())
    assert parsed["events"][1]["kind"] == "span:B"


# ----------------------------------------------------------------------
# stitching
# ----------------------------------------------------------------------
def steal_shard():
    """A two-trace event soup, one job with pool + device tracks."""
    a, b = trace_id_for("jobA"), trace_id_for("jobB")
    return [
        ev("B", "admission", "job/jobA/pool", 0, 0, {"trace_id": a}),
        ev("I", "stolen", "job/jobA/pool", 0, 1,
           {"trace_id": a, "source": 0, "target": 1}),
        ev("E", "admission", "job/jobA/pool", 0, 2, {"trace_id": a}),
        ev("B", "run", "job/jobA/dev", 5, 0, {"trace_id": a}),
        ev("E", "run", "job/jobA/dev", 9, 1, {"trace_id": a}),
        ev("B", "admission", "job/jobB/pool", 0, 3, {"trace_id": b}),
        ev("I", "orphan", "icap", 1, 0),  # no trace_id
    ]


def test_stitch_groups_one_process_per_trace_id():
    trace = stitch_span_events(steal_shard())
    names = {
        r["pid"]: r["args"]["name"]
        for r in trace["traceEvents"]
        if r.get("ph") == "M" and r["name"] == "process_name"
    }
    labels = sorted(names.values())
    expected = sorted(
        [f"trace:{trace_id_for('jobA')}", f"trace:{trace_id_for('jobB')}",
         "untraced"]
    )
    assert labels == expected
    # untraced events group under the trailing process
    untraced_pid = max(names)
    assert names[untraced_pid] == "untraced"
    rows = stitched_summary(trace)
    assert sum(r["events"] for r in rows) == len(steal_shard())


def test_stitch_is_input_order_independent():
    events = steal_shard()
    shuffled = list(events)
    random.Random(7).shuffle(shuffled)
    assert stitch_span_events(events) == stitch_span_events(shuffled)


def test_stitch_instants_use_chrome_instant_phase():
    trace = stitch_span_events(steal_shard())
    instants = [
        r for r in trace["traceEvents"] if r.get("name") == "stolen"
    ]
    assert instants and all(
        r["ph"] == "i" and r["s"] == "t" for r in instants
    )
    assert instants[0]["args"]["source"] == 0


def test_stitch_chrome_trace_files_round_trip(tmp_path):
    events = steal_shard()
    byA = [e for e in events if e.track.startswith("job/jobA")]
    rest = [e for e in events if not e.track.startswith("job/jobA")]
    p1 = dump_chrome_trace(byA, tmp_path / "shard-a.json")
    p2 = dump_chrome_trace(rest, tmp_path / "shard-b.json")
    stitched = stitch_chrome_trace_files([p1, p2])
    # same grouping as stitching the in-memory events (seq/depth are
    # not round-tripped, so compare the trace labels and event counts)
    direct = stitch_span_events(events)
    def labels(t):
        return sorted(
            r["args"]["name"] for r in t["traceEvents"]
            if r.get("ph") == "M" and r["name"] == "process_name"
        )
    assert labels(stitched) == labels(direct)
    out = dump_stitched_trace(stitched, tmp_path / "stitched.json")
    assert out.read_text() == (
        json.dumps(stitched, sort_keys=True, separators=(",", ":")) + "\n"
    )


# ----------------------------------------------------------------------
# Prometheus text conformance (S2)
# ----------------------------------------------------------------------
def test_prometheus_text_emits_help_and_type_once_per_family():
    reg = MetricsRegistry()
    reg.describe("my_metric", "a described metric")
    reg.counter("my_metric", {"tenant": "a"}).inc()
    reg.counter("my_metric", {"tenant": "b"}).inc()
    reg.histogram("repro_pool_queue_seconds", buckets=(1.0, 2.0)).observe(1.5)
    text = prometheus_text(reg)
    assert text.count("# HELP my_metric a described metric") == 1
    assert text.count("# TYPE my_metric counter") == 1
    assert text.index("# HELP my_metric") < text.index("# TYPE my_metric")
    # curated default help for known families, histogram series complete
    assert "# HELP repro_pool_queue_seconds " in text
    assert "# TYPE repro_pool_queue_seconds histogram" in text
    assert 'repro_pool_queue_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_pool_queue_seconds_sum 1.5" in text
    assert "repro_pool_queue_seconds_count 1" in text


def test_prometheus_label_values_are_escaped():
    reg = MetricsRegistry()
    reg.counter("c", {"tenant": 'we"ird\\ten\nant'}).inc()
    text = prometheus_text(reg)
    assert 'c{tenant="we\\"ird\\\\ten\\nant"} 1' in text


def test_registry_help_survives_merge_first_writer_wins():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.describe("m", "from a")
    b.describe("m", "from b")
    b.describe("other", "only b")
    a.merge(b)
    assert a.help_text("m") == "from a"
    assert a.help_text("other") == "only b"


# ----------------------------------------------------------------------
# PRR free-run fragmentation gauges (S1)
# ----------------------------------------------------------------------
def wide_params(prrs=4):
    return SystemParameters(
        name="frag-test",
        rsbs=[
            RsbParameters(
                num_prrs=prrs, num_ioms=1, iom_positions=[0],
                kr=2, kl=2, prr_slices=640,
            )
        ],
    )


def runtime_job(name, stages=1):
    spec = StreamJob(
        name=name,
        stages=[StageSpec("passthrough") for _ in range(stages)],
        source=SourceSpec("ramp", count=4),
    )
    return Job(spec, index=0)


def test_free_run_stats_and_gauges_track_the_free_set():
    admission = AdmissionController(wide_params(4))
    reg = MetricsRegistry()
    admission.bind_metrics(reg, labels={"device": "0"})
    labels = {"device": "0"}
    assert admission.free_run_stats() == (4, 4)
    assert reg.value("repro_prr_free_total", labels) == 4
    assert reg.value("repro_prr_fragmentation_ratio", labels) == 0.0
    # retire a middle PRR: 3 free split into runs of 1 and 2
    admission.quarantine("rsb0.prr1")
    assert admission.free_run_stats() == (3, 2)
    assert reg.value("repro_prr_free_total", labels) == 3
    assert reg.value("repro_prr_largest_free_run", labels) == 2
    ratio = reg.value("repro_prr_fragmentation_ratio", labels)
    assert abs(ratio - (1.0 - 2.0 / 3.0)) < 1e-12
    # scrub-verified recovery heals the run
    assert admission.release_quarantine("rsb0.prr1")
    assert reg.value("repro_prr_free_total", labels) == 4
    assert reg.value("repro_prr_fragmentation_ratio", labels) == 0.0


def test_fragmentation_follows_occupy_release_and_faults():
    admission = AdmissionController(wide_params(4), allow_preemption=False)
    reg = MetricsRegistry()
    admission.bind_metrics(reg)
    job = runtime_job("frag-occupant")
    admission.enqueue(job)
    pick = admission.next_decision(float("inf"), [])
    assert pick is not None
    picked, result = pick
    admission.occupy(picked, result.assignment)
    total, largest = admission.free_run_stats()
    assert total == 3
    assert reg.value("repro_prr_free_total") == 3
    admission.release(picked)
    assert admission.free_run_stats() == (4, 4)
    assert reg.value("repro_prr_fragmentation_ratio") == 0.0
    admission.mark_faulted("rsb0.prr2")
    assert admission.free_run_stats() == (3, 2)
    admission.mark_repaired("rsb0.prr2")
    assert admission.free_run_stats() == (4, 4)


def test_empty_free_set_reports_zero_ratio_not_nan():
    admission = AdmissionController(wide_params(2))
    reg = MetricsRegistry()
    admission.bind_metrics(reg)
    admission.quarantine("rsb0.prr0")
    admission.quarantine("rsb0.prr1")
    assert admission.free_run_stats() == (0, 0)
    assert reg.value("repro_prr_fragmentation_ratio") == 0.0
