"""Chrome-trace export: validity, determinism, round-trip, summaries."""

import json

from repro.obs.export import (
    chrome_trace_events,
    dump_chrome_trace,
    flame_summary,
    load_chrome_trace,
    render_trace_file,
    spans_from_chrome,
)
from repro.obs.spans import Tracer


def _sample_tracer() -> Tracer:
    clock = {"now": 0}
    tracer = Tracer(time_fn=lambda: clock["now"], wall_clock=False)
    tracer.begin("switch", category="switch", track="prr/rsb0.prr0")
    clock["now"] = 1_000_000  # 1 us
    tracer.instant("step 1", category="switch", track="prr/rsb0.prr0",
                   attrs={"text": "operating"})
    clock["now"] = 2_000_000
    tracer.begin("reconfigure", category="icap", track="icap",
                 attrs={"bytes": 1024})
    clock["now"] = 5_000_000
    tracer.end("reconfigure", track="icap")
    clock["now"] = 6_000_000
    tracer.end("switch", track="prr/rsb0.prr0")
    return tracer


def test_chrome_events_have_valid_phases_and_ids():
    events = chrome_trace_events(_sample_tracer().events)
    metadata = [e for e in events if e["ph"] == "M"]
    payload = [e for e in events if e["ph"] != "M"]
    # one process_name + (thread_name, thread_sort_index) per track
    names = {e["args"]["name"] for e in metadata if e["name"] == "thread_name"}
    assert names == {"icap", "prr/rsb0.prr0"}
    for event in payload:
        assert event["ph"] in ("B", "E", "i")
        assert isinstance(event["ts"], float)
        assert event["pid"] == 1
        assert event["tid"] >= 1
    instants = [e for e in payload if e["ph"] == "i"]
    assert instants and all(e["s"] == "t" for e in instants)
    # simulated-time (us) ordering
    times = [e["ts"] for e in payload]
    assert times == sorted(times)
    assert times[-1] == 6.0


def test_dump_is_byte_stable_and_loadable(tmp_path):
    events = _sample_tracer().events
    p1 = dump_chrome_trace(events, tmp_path / "a.json")
    p2 = dump_chrome_trace(list(events), tmp_path / "b.json")
    assert p1.read_bytes() == p2.read_bytes()
    wrapper = json.loads(p1.read_text())
    assert wrapper["displayTimeUnit"] == "ms"
    loaded = load_chrome_trace(p1)
    assert loaded == wrapper["traceEvents"]


def test_golden_chrome_trace(tmp_path):
    """The exact serialised form is part of the tool contract."""
    tracer = Tracer(time_fn=lambda: 42, wall_clock=False)
    tracer.instant("hello", category="demo", track="t", attrs={"n": 1})
    path = dump_chrome_trace(tracer.events, tmp_path / "golden.json")
    expected = (
        '{"displayTimeUnit":"ms","traceEvents":['
        '{"args":{"name":"repro"},"name":"process_name","ph":"M",'
        '"pid":1,"tid":0,"ts":0},'
        '{"args":{"name":"t"},"name":"thread_name","ph":"M",'
        '"pid":1,"tid":1,"ts":0},'
        '{"args":{"sort_index":1},"name":"thread_sort_index","ph":"M",'
        '"pid":1,"tid":1,"ts":0},'
        '{"args":{"n":1},"cat":"demo","name":"hello","ph":"i",'
        '"pid":1,"s":"t","tid":1,"ts":4.2e-05}'
        "]}\n"
    )
    assert path.read_text() == expected


def test_spans_round_trip_through_chrome_format(tmp_path):
    original = _sample_tracer().events
    path = dump_chrome_trace(original, tmp_path / "t.json")
    restored = spans_from_chrome(load_chrome_trace(path))
    assert [(e.kind, e.name, e.track, e.time_ps) for e in restored] == [
        (e.kind, e.name, e.track, e.time_ps) for e in original
    ]


def test_flame_summary_aggregates_by_path():
    text = flame_summary(_sample_tracer().events)
    lines = text.splitlines()
    assert "span path" in lines[0]
    assert any("prr/rsb0.prr0;switch" in line and "6.000" in line
               for line in lines)
    assert any("icap;reconfigure" in line and "3.000" in line
               for line in lines)
    assert flame_summary([]) == "(no completed spans)"
    assert len(flame_summary(_sample_tracer().events, top=1)
               .splitlines()) == 2


def test_render_trace_file_table(tmp_path):
    path = dump_chrome_trace(_sample_tracer().events, tmp_path / "t.json")
    table = render_trace_file(path)
    assert "prr/rsb0.prr0" in table
    assert "step 1" in table
    assert "dur=3.000us" in table  # reconfigure end row
    # limit/tail/track filtering
    limited = render_trace_file(path, limit=1)
    assert "switch" in limited and "step 1" not in limited
    tailed = render_trace_file(path, limit=1, tail=True)
    assert "end" in tailed
    only_icap = render_trace_file(path, tracks=["icap"])
    assert "prr/rsb0.prr0" not in only_icap
