"""Unit tests for the DCR bus and bridge."""

import pytest

from repro.control.dcr import DcrBridge, DcrBus, DcrError


class FakeSlave:
    def __init__(self):
        self.value = 0

    def dcr_read(self):
        return self.value

    def dcr_write(self, value):
        self.value = value


def test_attach_read_write():
    bus = DcrBus()
    slave = FakeSlave()
    bus.attach(0x80, slave)
    bus.write(0x80, 0xAB)
    assert bus.read(0x80) == 0xAB
    assert bus.reads == 1
    assert bus.writes == 1


def test_double_attach_rejected():
    bus = DcrBus()
    bus.attach(0x80, FakeSlave())
    with pytest.raises(DcrError, match="already mapped"):
        bus.attach(0x80, FakeSlave())


def test_unmapped_access_raises():
    bus = DcrBus()
    with pytest.raises(DcrError, match="no DCR slave"):
        bus.read(0x99)
    with pytest.raises(DcrError):
        bus.write(0x99, 1)


def test_mapped_addresses_sorted():
    bus = DcrBus()
    bus.attach(0x90, FakeSlave())
    bus.attach(0x80, FakeSlave())
    assert bus.mapped_addresses == [0x80, 0x90]


def test_bridge_forwards_and_reports_latency():
    bus = DcrBus()
    slave = FakeSlave()
    bus.attach(0x80, slave)
    bridge = DcrBridge(bus)
    bridge.write(0x80, 7)
    assert bridge.read(0x80) == 7
    assert bridge.read_cycles > 0
    assert bridge.write_cycles > 0
