"""Unit tests for the PRSocket DCR register (paper Table 1)."""

import pytest

from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.comm.switchbox import MODULE_IN, RIGHT, SourceRef, SwitchBox
from repro.control.prsocket import (
    BIT_CLK_EN,
    BIT_CLK_SEL,
    BIT_FIFO_REN,
    BIT_FIFO_RESET,
    BIT_FIFO_WEN,
    BIT_FSL_RESET,
    BIT_PRR_RESET,
    BIT_SM_EN,
    DCR_BITS,
    MUX_SEL_SHIFT,
    PRSocket,
)
from repro.fabric.slice_macro import SliceMacro
from repro.sim.clock import Bufgmux, Bufr, FixedSource


def make_socket():
    socket = PRSocket("sock", 0x80)
    macros = [SliceMacro(f"sm{i}", 0, 0) for i in range(2)]
    producer = ProducerInterface("p")
    consumer = ConsumerInterface("c")
    fsl_t = FslLink("t")
    fsl_r = FslLink("r")
    mux = Bufgmux(FixedSource(100e6), FixedSource(50e6))
    bufr = Bufr(mux)
    box = SwitchBox(0, 2, 2, 1, 1)
    resets = []
    socket.connect(
        slice_macros=macros,
        producers=[producer],
        consumers=[consumer],
        fsl_to_module=fsl_t,
        fsl_to_processor=fsl_r,
        bufr=bufr,
        bufgmux=mux,
        switchbox=box,
        reset_target=lambda: resets.append(1),
    )
    return socket, {
        "macros": macros,
        "producer": producer,
        "consumer": consumer,
        "fsl_t": fsl_t,
        "fsl_r": fsl_r,
        "mux": mux,
        "bufr": bufr,
        "box": box,
        "resets": resets,
    }


def test_table1_bit_positions():
    """The register layout matches Table 1 of the paper exactly."""
    assert DCR_BITS == {
        "SM_en": 0,
        "PRR_reset": 1,
        "FIFO_reset": 2,
        "FSL_reset": 3,
        "FIFO_wen": 4,
        "FIFO_ren": 5,
        "CLK_en": 6,
        "CLK_sel": 7,
    }
    assert MUX_SEL_SHIFT == 8


def test_sm_en_controls_slice_macros():
    socket, hw = make_socket()
    socket.dcr_write(1 << BIT_SM_EN)
    assert all(m.enabled for m in hw["macros"])
    socket.dcr_write(0)
    assert not any(m.enabled for m in hw["macros"])


def test_prr_reset_rising_edge_triggers_target():
    socket, hw = make_socket()
    socket.dcr_write(1 << BIT_PRR_RESET)
    socket.dcr_write(1 << BIT_PRR_RESET)  # level held: no second pulse
    assert hw["resets"] == [1]
    socket.dcr_write(0)
    socket.dcr_write(1 << BIT_PRR_RESET)
    assert hw["resets"] == [1, 1]
    assert socket.in_reset


def test_fifo_reset_clears_interfaces():
    socket, hw = make_socket()
    hw["producer"].module_write(1)
    hw["consumer"].fifo_wen = True
    hw["consumer"].receive(True, 2)
    socket.dcr_write(1 << BIT_FIFO_RESET)
    assert hw["producer"].fifo.empty
    assert hw["consumer"].fifo.empty


def test_fsl_reset_clears_links():
    socket, hw = make_socket()
    hw["fsl_t"].master_write(1)
    hw["fsl_r"].master_write(2)
    socket.dcr_write(1 << BIT_FSL_RESET)
    assert not hw["fsl_t"].can_read
    assert not hw["fsl_r"].can_read


def test_fifo_wen_ren_levels():
    socket, hw = make_socket()
    socket.dcr_write((1 << BIT_FIFO_WEN) | (1 << BIT_FIFO_REN))
    assert hw["consumer"].fifo_wen
    assert hw["producer"].fifo_ren
    socket.dcr_write(0)
    assert not hw["consumer"].fifo_wen
    assert not hw["producer"].fifo_ren


def test_clk_en_gates_bufr():
    socket, hw = make_socket()
    socket.dcr_write(1 << BIT_CLK_EN)
    assert hw["bufr"].enabled
    socket.dcr_write(0)
    assert not hw["bufr"].enabled


def test_clk_sel_drives_bufgmux():
    socket, hw = make_socket()
    socket.dcr_write(1 << BIT_CLK_SEL)
    assert hw["mux"].selected == 1
    assert hw["mux"].frequency_hz == 50e6
    socket.dcr_write(0)
    assert hw["mux"].selected == 0


def test_mux_sel_field_programs_switchbox():
    socket, hw = make_socket()
    # program the box externally and check read-back
    hw["box"].allocate(RIGHT, 1, SourceRef(MODULE_IN, 0))
    bits = hw["box"].mux_select_bits()
    assert socket.dcr_read() >> MUX_SEL_SHIFT == bits
    # clear via a DCR write with MUX field zeroed
    socket.dcr_write(socket.dcr_read() & 0xFF)
    assert hw["box"].mux_select_bits() == 0


def test_read_reflects_live_state():
    socket, hw = make_socket()
    hw["producer"].fifo_ren = True  # set behind the socket's back
    assert socket.read_field("FIFO_ren")


def test_write_field_read_modify_write():
    socket, _ = make_socket()
    socket.write_field("CLK_en", True)
    socket.write_field("FIFO_wen", True)
    assert socket.read_field("CLK_en")
    assert socket.read_field("FIFO_wen")
    socket.write_field("CLK_en", False)
    assert not socket.read_field("CLK_en")
    assert socket.read_field("FIFO_wen")


def test_unknown_field_rejected():
    socket, _ = make_socket()
    with pytest.raises(KeyError):
        socket.write_field("BOGUS", True)
    with pytest.raises(KeyError):
        socket.read_field("BOGUS")


def test_unconnected_socket_tolerates_writes():
    socket = PRSocket("bare", 0x80)
    socket.dcr_write(0xFF)  # nothing attached; must not raise
    assert socket.dcr_read() & (1 << BIT_PRR_RESET)
