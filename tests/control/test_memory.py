"""Unit tests for the memory models and their calibrated rates."""

import pytest

from repro.control.memory import (
    CF_BYTES_PER_SECOND,
    ICAP_BUFFER_BYTES_PER_SECOND,
    SDRAM_ICAP_BYTES_PER_SECOND,
    BramBuffer,
    CompactFlash,
    MemoryError_,
    Sdram,
)


class Payload:
    def __init__(self, size):
        self.size_bytes = size


def test_cf_store_and_read():
    cf = CompactFlash()
    cf.store_file("a.bit", Payload(100))
    assert cf.has_file("a.bit")
    assert "a.bit" in cf
    payload = cf.read_file("a.bit")
    assert payload.size_bytes == 100
    assert cf.bytes_read == 100


def test_cf_missing_file():
    with pytest.raises(MemoryError_, match="not found"):
        CompactFlash().read_file("nope.bit")


def test_cf_transfer_time_linear():
    cf = CompactFlash()
    assert cf.transfer_seconds(2000) == pytest.approx(
        2 * cf.transfer_seconds(1000)
    )


def test_sdram_store_and_capacity():
    sdram = Sdram(capacity_bytes=150)
    sdram.store_array("a", Payload(100))
    assert sdram.used_bytes == 100
    with pytest.raises(MemoryError_, match="overflow"):
        sdram.store_array("b", Payload(100))


def test_sdram_replace_same_key_accounts_delta():
    sdram = Sdram(capacity_bytes=150)
    sdram.store_array("a", Payload(100))
    sdram.store_array("a", Payload(120))
    assert sdram.used_bytes == 120


def test_sdram_missing_array():
    with pytest.raises(MemoryError_):
        Sdram(100).read_array("x")


def test_calibrated_rate_ordering():
    """CF is the slow path; the buffered ICAP write is the fastest."""
    assert CF_BYTES_PER_SECOND < SDRAM_ICAP_BYTES_PER_SECOND
    assert SDRAM_ICAP_BYTES_PER_SECOND < ICAP_BUFFER_BYTES_PER_SECOND


def test_calibration_reproduces_paper_times():
    """36,408-byte prototype bitstream: 1.043 s via CF, 71.94 ms via SDRAM."""
    size = 36_408
    cf = CompactFlash()
    buffer = BramBuffer()
    sdram = Sdram(1 << 20)
    cf_path = cf.transfer_seconds(size) + buffer.icap_transfer_seconds(size)
    assert cf_path == pytest.approx(1.043, rel=0.01)
    assert sdram.icap_transfer_seconds(size) == pytest.approx(0.07194, rel=0.01)
    # the 95.3% / 4.7% split of Section V.B
    assert cf.transfer_seconds(size) / cf_path == pytest.approx(0.953, abs=0.005)


def test_bram_buffer_load():
    buffer = BramBuffer()
    payload = Payload(10)
    buffer.load(payload)
    assert buffer.resident is payload
