"""Unit tests for the ICAP controller."""

import pytest

from repro.control.icap import IcapController, IcapError
from repro.sim.kernel import Simulator


def test_transfer_completes_after_duration():
    sim = Simulator()
    icap = IcapController(sim)
    done = []
    transfer = icap.start_transfer(
        "mod@prr0", 1000, 0.001, on_done=lambda t: done.append(t)
    )
    assert icap.busy
    sim.run_for(999_999_999)  # just under 1 ms
    assert not transfer.done
    sim.run_for(2)
    assert transfer.done
    assert done == [transfer]
    assert not icap.busy
    assert icap.bytes_written == 1000


def test_busy_icap_rejects_second_transfer():
    sim = Simulator()
    icap = IcapController(sim)
    icap.start_transfer("a@p0", 10, 0.01)
    with pytest.raises(IcapError, match="busy"):
        icap.start_transfer("b@p1", 10, 0.01)
    sim.run()
    icap.start_transfer("b@p1", 10, 0.01)  # fine after completion


def test_zero_size_rejected():
    icap = IcapController(Simulator())
    with pytest.raises(IcapError, match="positive"):
        icap.start_transfer("a@p0", 0, 0.01)


def test_history_and_trace():
    sim = Simulator()
    icap = IcapController(sim)
    icap.start_transfer("a@p0", 10, 0.001)
    sim.run()
    icap.start_transfer("b@p1", 20, 0.002)
    sim.run()
    assert [t.target for t in icap.history] == ["a@p0", "b@p1"]
    categories = {e.category for e in sim.trace}
    assert "icap" in categories


def test_done_callback_after_completion_fires_immediately():
    sim = Simulator()
    icap = IcapController(sim)
    transfer = icap.start_transfer("a@p0", 10, 0.001)
    sim.run()
    fired = []
    transfer.add_done_callback(lambda: fired.append(1))
    assert fired == [1]


def test_done_callback_before_completion_deferred():
    sim = Simulator()
    icap = IcapController(sim)
    transfer = icap.start_transfer("a@p0", 10, 0.001)
    fired = []
    transfer.add_done_callback(lambda: fired.append(1))
    assert fired == []
    sim.run()
    assert fired == [1]


def test_duration_seconds_property():
    sim = Simulator()
    icap = IcapController(sim)
    transfer = icap.start_transfer("a@p0", 10, 0.07194)
    assert transfer.duration_seconds == pytest.approx(0.07194)
