"""Unit tests for the xps_timer model."""

import pytest

from repro.control.timer import XpsTimer
from repro.sim.clock import Clock
from repro.sim.kernel import Simulator


def test_elapsed_cycles():
    sim = Simulator()
    clock = Clock(sim, freq_hz=100e6)
    timer = XpsTimer(sim, clock)
    timer.start()
    sim.schedule(1_000_000, lambda: None)  # 1 us
    sim.run()
    sim.run_until(1_000_000)
    assert timer.stop() == 100  # 100 cycles at 10 ns


def test_stop_without_start_raises():
    sim = Simulator()
    timer = XpsTimer(sim, Clock(sim, freq_hz=100e6))
    with pytest.raises(RuntimeError):
        timer.stop()


def test_cycles_to_seconds():
    sim = Simulator()
    timer = XpsTimer(sim, Clock(sim, freq_hz=100e6))
    assert timer.cycles_to_seconds(104_338_861) == pytest.approx(1.043, rel=1e-3)


def test_restartable():
    sim = Simulator()
    timer = XpsTimer(sim, Clock(sim, freq_hz=100e6))
    timer.start()
    sim.run_until(10_000)
    first = timer.stop()
    timer.start()
    sim.run_until(30_000)
    second = timer.stop()
    assert (first, second) == (1, 2)
    assert timer.last_elapsed_cycles == 2
