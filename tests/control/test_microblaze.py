"""Unit tests for the behavioural MicroBlaze."""

import pytest

from repro.comm.fsl import FslLink
from repro.control.dcr import BRIDGE_WRITE_CYCLES
from repro.control.microblaze import (
    Call,
    DcrRead,
    DcrWrite,
    Delay,
    FslGet,
    FslPut,
    Join,
    Microblaze,
    Suspend,
    WaitFor,
)
from repro.control.prsocket import PRSocket
from repro.sim.clock import Clock
from repro.sim.kernel import Simulator


def make_cpu():
    sim = Simulator()
    clock = Clock(sim, freq_hz=100e6)
    return sim, Microblaze(sim, clock)


def test_delay_advances_time():
    sim, cpu = make_cpu()

    def software():
        yield Delay(100)
        return sim.now

    assert cpu.run_to_completion(software()) == 100 * 10_000


def test_return_value_propagates():
    _, cpu = make_cpu()

    def software():
        yield Delay(1)
        return 42

    assert cpu.run_to_completion(software()) == 42


def test_exception_reraised():
    _, cpu = make_cpu()

    def software():
        yield Delay(1)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        cpu.run_to_completion(software())


def test_dcr_read_write_effects():
    _, cpu = make_cpu()
    socket = PRSocket("s", 0x80)

    def software():
        yield DcrWrite(socket, 0x02)  # PRR_reset latches even on a bare socket
        value = yield DcrRead(socket)
        return value

    value = cpu.run_to_completion(software())
    assert value & 0x02
    assert cpu.dcr_writes == 1
    assert cpu.dcr_reads == 1


def test_dcr_write_charges_bridge_cycles():
    sim, cpu = make_cpu()
    socket = PRSocket("s", 0x80)

    def software():
        yield DcrWrite(socket, 0)

    task = cpu.spawn(software())
    sim.run()
    assert task.cycles_charged >= BRIDGE_WRITE_CYCLES


def test_fsl_roundtrip():
    _, cpu = make_cpu()
    link = FslLink("l")

    def software():
        yield FslPut(link, 7, True)
        return (yield FslGet(link))

    assert cpu.run_to_completion(software()) == (7, True)


def test_fsl_get_blocks_until_data():
    sim, cpu = make_cpu()
    link = FslLink("l")
    result = []

    def reader():
        word = yield FslGet(link)
        result.append(word)

    cpu.spawn(reader())
    sim.run()
    assert result == []  # blocked, event queue drained
    link.master_write(9)
    sim.run()
    assert result == [(9, False)]


def test_fsl_get_nonblocking_returns_none():
    _, cpu = make_cpu()
    link = FslLink("l")

    def software():
        return (yield FslGet(link, blocking=False))

    assert cpu.run_to_completion(software()) is None


def test_fsl_put_blocks_until_space():
    sim, cpu = make_cpu()
    link = FslLink("l", depth=1)
    link.master_write(1)
    done = []

    def writer():
        yield FslPut(link, 2)
        done.append(True)

    cpu.spawn(writer())
    sim.run()
    assert done == []
    link.slave_read()
    sim.run()
    assert done == [True]


def test_wait_for_polls_predicate():
    sim, cpu = make_cpu()
    flag = {"ready": False}
    sim.schedule(5_000_000, lambda: flag.update(ready=True))

    def software():
        yield WaitFor(lambda: flag["ready"], poll_cycles=100)
        return sim.now

    assert cpu.run_to_completion(software()) >= 5_000_000


def test_suspend_resumes_on_callback():
    sim, cpu = make_cpu()
    resume_callbacks = []

    def software():
        yield Suspend(resume_callbacks.append)
        return "resumed"

    task = cpu.spawn(software())
    sim.run()
    assert not task.done
    resume_callbacks[0]()
    sim.run()
    assert task.result == "resumed"


def test_call_subroutine_returns_value():
    _, cpu = make_cpu()

    def sub():
        yield Delay(1)
        return 10

    def software():
        value = yield Call(sub())
        return value + 1

    assert cpu.run_to_completion(software()) == 11


def test_yield_from_subroutine():
    _, cpu = make_cpu()

    def sub():
        yield Delay(1)
        return 5

    def software():
        value = yield from sub()
        return value * 2

    assert cpu.run_to_completion(software()) == 10


def test_join_waits_for_other_task():
    sim, cpu = make_cpu()

    def worker():
        yield Delay(500)
        return "payload"

    def boss(worker_task):
        value = yield Join(worker_task)
        return value

    worker_task = cpu.spawn(worker(), "worker")
    assert cpu.run_to_completion(boss(worker_task), "boss") == "payload"


def test_join_propagates_error():
    sim, cpu = make_cpu()

    def worker():
        yield Delay(1)
        raise RuntimeError("dead")

    def boss(worker_task):
        yield Join(worker_task)

    worker_task = cpu.spawn(worker(), "worker")
    with pytest.raises(RuntimeError, match="dead"):
        cpu.run_to_completion(boss(worker_task), "boss")


def test_unknown_effect_fails_task():
    _, cpu = make_cpu()

    def software():
        yield object()

    with pytest.raises(TypeError, match="unknown effect"):
        cpu.run_to_completion(software())


def test_deadlocked_task_raises():
    _, cpu = make_cpu()
    link = FslLink("l")

    def software():
        yield FslGet(link)  # nobody ever writes

    with pytest.raises(RuntimeError, match="did not finish"):
        cpu.run_to_completion(software())


def test_concurrent_tasks_interleave():
    sim, cpu = make_cpu()
    link = FslLink("l")
    order = []

    def producer():
        for value in range(3):
            yield Delay(10)
            yield FslPut(link, value)
            order.append(("put", value))

    def consumer():
        for _ in range(3):
            data, _ = yield FslGet(link)
            order.append(("got", data))

    cpu.spawn(producer())
    task = cpu.spawn(consumer())
    sim.run()
    assert task.done
    assert [o for o in order if o[0] == "got"] == [
        ("got", 0),
        ("got", 1),
        ("got", 2),
    ]
