"""Tests for the benchmark runner, regression compare and CLI gate."""

import json

import pytest

from repro.__main__ import main
from repro.bench import (
    SCHEMA_VERSION,
    BenchError,
    compare_reports,
    default_output_name,
    render_compare,
    run_bench,
)
from repro.bench.runner import load_report, write_report


def fake_report(mode="quick", scale=1.0, cases=("alpha", "beta")):
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "repro-bench",
        "revision": "test",
        "mode": mode,
        "generated_unix": 0,
        "calibration": {"score": 1e6, "elapsed_s": 0.1, "iterations": 1e5},
        "cases": {
            name: {
                "metric": "ops_per_sec",
                "value": 1000.0 * scale,
                "normalized": 0.01 * scale,
                "elapsed_s": 0.5,
                "extra": {},
            }
            for name in cases
        },
        "derived": {},
    }


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def test_run_bench_writes_schema_versioned_report(tmp_path):
    report = run_bench(quick=True, cases=["kernel_events"], revision="r1")
    assert report["schema_version"] == SCHEMA_VERSION
    assert report["kind"] == "repro-bench"
    assert report["mode"] == "quick"
    assert report["revision"] == "r1"
    assert report["calibration"]["score"] > 0
    case = report["cases"]["kernel_events"]
    assert case["metric"] == "events_per_sec"
    assert case["value"] > 0
    assert case["normalized"] > 0
    path = write_report(report, tmp_path / default_output_name("r1"))
    assert path.name == "BENCH_r1.json"
    assert load_report(path) == report


def test_run_bench_rejects_unknown_case():
    with pytest.raises(BenchError, match="unknown benchmark case"):
        run_bench(quick=True, cases=["no_such_case"])


def test_load_report_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(BenchError, match="malformed"):
        load_report(path)
    path.write_text(json.dumps({"kind": "other"}))
    with pytest.raises(BenchError, match="not a repro-bench report"):
        load_report(path)
    wrong = fake_report()
    wrong["schema_version"] = 999
    path.write_text(json.dumps(wrong))
    with pytest.raises(BenchError, match="schema_version"):
        load_report(path)
    with pytest.raises(BenchError, match="cannot read"):
        load_report(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------
def test_compare_identical_reports_pass():
    result = compare_reports(fake_report(), fake_report())
    assert result.ok
    assert not result.regressions
    assert "OK" in render_compare(result)


def test_compare_detects_injected_slowdown():
    slow = fake_report(scale=0.5)  # 50% slower than baseline
    result = compare_reports(slow, fake_report(), threshold=0.15)
    assert not result.ok
    assert len(result.regressions) == 2
    assert "REGRESSION" in render_compare(result)


def test_compare_tolerates_small_noise():
    noisy = fake_report(scale=0.9)  # -10% is under the 15% threshold
    result = compare_reports(noisy, fake_report(), threshold=0.15)
    assert result.ok


def test_compare_flags_missing_case():
    partial = fake_report(cases=("alpha",))
    result = compare_reports(partial, fake_report())
    assert not result.ok
    assert any("missing" in r for r in result.regressions)


def test_compare_notes_new_case():
    grown = fake_report(cases=("alpha", "beta", "gamma"))
    result = compare_reports(grown, fake_report())
    assert result.ok
    assert any("new case" in n for n in result.notes)


def test_compare_rejects_mode_mismatch():
    with pytest.raises(BenchError, match="mode mismatch"):
        compare_reports(fake_report(mode="full"), fake_report(mode="quick"))


def test_compare_rejects_bad_threshold():
    with pytest.raises(BenchError, match="threshold"):
        compare_reports(fake_report(), fake_report(), threshold=1.5)


def test_compare_prints_reference_seed_speedup():
    baseline = fake_report()
    baseline["reference_seed"] = {
        "machine": "ref host",
        "cases": {
            "alpha": {"metric": "ops_per_sec", "value": 250.0},
        },
    }
    result = compare_reports(fake_report(), baseline)
    assert any("4.00x" in n and "ref host" in n for n in result.notes)


# ----------------------------------------------------------------------
# CLI (runs from an arbitrary CWD: satellite for the sys.path fix)
# ----------------------------------------------------------------------
def test_cli_bench_gate_from_any_cwd(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "run.json"
    assert main([
        "bench", "--quick", "--cases", "kernel_events",
        "--output", str(out), "--no-rerun",
    ]) == 0
    assert out.exists()
    report = load_report(out)

    # self-compare passes the gate
    baseline = tmp_path / "baseline.json"
    write_report(report, baseline)
    assert main([
        "bench", "--quick", "--cases", "kernel_events",
        "--output", str(out), "--compare", str(baseline), "--no-rerun",
    ]) == 0

    # an inflated baseline (i.e. this code got slower) fails it
    inflated = dict(report)
    inflated["cases"] = json.loads(json.dumps(report["cases"]))
    inflated["cases"]["kernel_events"]["normalized"] *= 3
    write_report(inflated, baseline)
    assert main([
        "bench", "--quick", "--cases", "kernel_events",
        "--output", str(out), "--compare", str(baseline), "--no-rerun",
    ]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_bench_mode_mismatch_is_usage_error(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    baseline = tmp_path / "baseline.json"
    write_report(fake_report(mode="full"), baseline)
    code = main([
        "bench", "--quick", "--cases", "kernel_events",
        "--output", str(tmp_path / "r.json"), "--compare", str(baseline),
    ])
    assert code == 2


def test_cli_update_baseline_preserves_reference_seed(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    run = run_bench(quick=True, cases=["kernel_events"], revision="r1")
    baseline = dict(run)
    baseline["reference_seed"] = {"machine": "m", "cases": {}}
    write_report(baseline, baseline_path)
    assert main([
        "bench", "--quick", "--cases", "kernel_events",
        "--output", str(tmp_path / "r.json"),
        "--compare", str(baseline_path), "--update-baseline", "--no-rerun",
    ]) == 0
    refreshed = load_report(baseline_path)
    assert refreshed["reference_seed"] == {"machine": "m", "cases": {}}
    assert refreshed["cases"]["kernel_events"]["value"] > 0


def test_committed_baseline_is_loadable_and_quick_mode():
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    baseline = load_report(repo / "benchmarks" / "baselines.json")
    assert baseline["mode"] == "quick"
    assert set(baseline["cases"]) == {
        "kernel_events",
        "compaction_churn",
        "fig5_steady_state",
        "fig5_steady_state_heap",
        "fig5_switch",
        "fleet_steady_state",
        "fleet_steady_state_heap",
        "realtime_pipeline",
        "pool_soak",
        "pool_soak_live",
    }
    for case in baseline["cases"].values():
        assert case["normalized"] > 0 or case["value"] > 0
    assert "reference_seed" in baseline
