"""Checkpoint blobs: schema, ResumeState round-trips, compatibility."""

import pytest

from repro.realtime.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    JobCheckpoint,
)
from repro.runtime.jobs import ResumeState, SourceSpec, StageSpec, StreamJob


def make_spec(stages=2):
    return StreamJob(
        name="cam0",
        stages=[StageSpec(kind="moving_average")] * stages,
        source=SourceSpec(kind="ramp", count=64),
    )


def make_resume(stages=2):
    return ResumeState(
        stage_states=[[i, i + 1] for i in range(stages)],
        source_offset=17,
        capture_us=3.5,
    )


def test_checkpoint_dict_roundtrip():
    ckpt = Checkpoint(
        job="cam0", stage_index=1, stage_kind="fir", prr="rsb0.prr1",
        slices_needed=640, state_words=(1, 2, 3),
    )
    assert Checkpoint.from_dict(ckpt.to_dict()) == ckpt


def test_checkpoint_rejects_unknown_and_missing_keys():
    good = Checkpoint(
        job="j", stage_index=0, stage_kind="abs", prr="p", slices_needed=1
    ).to_dict()
    bad = dict(good, extra=1)
    with pytest.raises(CheckpointError, match="extra"):
        Checkpoint.from_dict(bad)
    del good["prr"]
    with pytest.raises(CheckpointError, match="prr"):
        Checkpoint.from_dict(good)


def test_checkpoint_rejects_wrong_version():
    data = Checkpoint(
        job="j", stage_index=0, stage_kind="abs", prr="p", slices_needed=1
    ).to_dict()
    data["schema_version"] = 99
    with pytest.raises(CheckpointError, match="schema_version"):
        Checkpoint.from_dict(data)


def test_job_checkpoint_roundtrips_resume_state():
    resume = make_resume()
    ckpt = JobCheckpoint.from_resume(
        make_spec(), resume, prrs=["rsb0.prr0", "rsb0.prr1"],
        slices_needed=640,
    )
    back = ckpt.to_resume()
    assert back.stage_states == resume.stage_states
    assert back.source_offset == resume.source_offset
    assert back.capture_us == resume.capture_us
    assert JobCheckpoint.from_dict(ckpt.to_dict()) == ckpt


def test_job_checkpoint_rejects_stage_count_mismatch():
    with pytest.raises(CheckpointError, match="stage"):
        JobCheckpoint.from_resume(
            make_spec(stages=3), make_resume(stages=2),
            prrs=["a", "b", "c"], slices_needed=1,
        )


def test_compatibility_is_per_stage_slice_fit():
    ckpt = JobCheckpoint.from_resume(
        make_spec(), make_resume(), prrs=["p0", "p1"], slices_needed=640,
    )
    assert ckpt.compatible_with([640, 1024])
    assert not ckpt.compatible_with([640, 512])  # second PRR too small
    assert not ckpt.compatible_with([640])  # shape mismatch


def test_store_counts_saves_and_restores():
    store = CheckpointStore()
    first = JobCheckpoint.from_resume(
        make_spec(), make_resume(), prrs=["a", "b"], slices_needed=1
    )
    store.put(first)
    store.put(first)
    assert store.saves == 2
    assert len(store) == 1
    assert store.take("cam0") is first
    assert store.take("ghost") is None
    assert store.restores == 1
    assert store.latest("cam0") is first  # take() keeps the blob
    assert store.stage("cam0", 1) is first.stages[1]
    assert store.stage("cam0", 9) is None
    assert store.jobs() == ["cam0"]
