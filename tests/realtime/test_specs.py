"""Realtime job specs: DAG linearization, frame math, jobfile schema."""

import json

import pytest

from repro.realtime.specs import (
    REALTIME_SCHEMA_VERSION,
    RealtimeError,
    RealtimeJob,
    StageNode,
    frame_outcomes,
    linearize,
    load_realtime_jobfile,
)
from repro.realtime.workloads import generate_workload, workload_to_dict
from repro.runtime.jobs import JobError, load_jobfile


def make_job(**overrides):
    fields = dict(
        name="cam0",
        stages=(StageNode(id="f", kind="moving_average"),),
        period_us=40.0,
        deadline_us=80.0,
        frames=4,
        frame_words=100,
    )
    fields.update(overrides)
    return RealtimeJob(**fields)


# ----------------------------------------------------------------------
# stage DAG
# ----------------------------------------------------------------------
def test_linearize_plain_list_is_a_chain():
    nodes = [
        StageNode(id="a", kind="abs"),
        StageNode(id="b", kind="moving_average"),
        StageNode(id="c", kind="delta_encoder"),
    ]
    assert [n.id for n in linearize(nodes)] == ["a", "b", "c"]


def test_linearize_orders_by_after_edges():
    nodes = [
        StageNode(id="cond", kind="abs"),
        StageNode(id="encode", kind="delta_encoder", after=("filter",)),
        StageNode(id="filter", kind="moving_average", after=("cond",)),
    ]
    assert [n.id for n in linearize(nodes)] == ["cond", "filter", "encode"]


def test_linearize_rejects_cycles():
    nodes = [
        StageNode(id="a", kind="abs", after=("b",)),
        StageNode(id="b", kind="median", after=("a",)),
    ]
    with pytest.raises(RealtimeError, match="cycle"):
        linearize(nodes)


def test_linearize_rejects_diamonds():
    nodes = [
        StageNode(id="src", kind="abs"),
        StageNode(id="left", kind="median", after=("src",)),
        StageNode(id="right", kind="fir", after=("src",)),
    ]
    with pytest.raises(RealtimeError, match="unique chain"):
        linearize(nodes)


def test_linearize_rejects_unknown_reference():
    with pytest.raises(RealtimeError, match="unknown 'after'"):
        linearize([StageNode(id="a", kind="abs", after=("ghost",))])


def test_variable_rate_kinds_are_banned():
    with pytest.raises(RealtimeError, match="data-dependent"):
        StageNode(id="t", kind="threshold")


# ----------------------------------------------------------------------
# frame accounting
# ----------------------------------------------------------------------
def test_decimator_shrinks_expected_output():
    job = make_job(
        stages=(
            StageNode(id="f", kind="moving_average"),
            StageNode(id="d", kind="decimator", params={"factor": 4}),
        ),
    )
    assert job.expected_output_words(100) == 25
    assert job.expected_output_words(10_000) == 100  # capped at total
    assert job.frame_required() == [25, 50, 75, 100]


def test_frame_deadlines_are_release_plus_relative():
    job = make_job(arrival_us=10.0)
    assert job.frame_deadlines_us() == [90.0, 130.0, 170.0, 210.0]


def test_frame_outcomes_judges_from_best_segment():
    job = make_job(frames=2, frame_words=3, period_us=10.0, deadline_us=10.0)
    # frame 0 needs 3 words by 10us, frame 1 needs 6 by 20us; the second
    # attempt restarted and got further before frame 1's deadline
    early = [2e6, 4e6, 6e6]
    retry = [11e6, 12e6, 13e6, 14e6, 15e6, 16e6]
    outcomes = frame_outcomes(job, [early, retry])
    assert [o.hit for o in outcomes] == [True, True]
    assert outcomes[0].met_at_us == 6.0
    assert outcomes[1].delivered_words == 6


def test_frame_outcomes_records_misses():
    job = make_job(frames=2, frame_words=4, period_us=10.0, deadline_us=5.0)
    outcomes = frame_outcomes(job, [[1e6, 2e6]])
    assert [o.hit for o in outcomes] == [False, False]
    assert outcomes[0].delivered_words == 2
    assert outcomes[0].met_at_us is None


def test_to_stream_job_is_preemptible_with_derived_count():
    job = make_job(source_kind="sine")
    spec = job.to_stream_job()
    assert spec.preemptible
    assert spec.source.count == job.total_words
    assert spec.source.kind == "sine"


# ----------------------------------------------------------------------
# jobfile schema
# ----------------------------------------------------------------------
def write_jobfile(tmp_path, data, name="rt.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


def test_jobfile_roundtrips_through_generator(tmp_path):
    jobs = generate_workload(seed=5, jobs=2, utilization=0.5)
    data = workload_to_dict(jobs, utilization_bound=0.8)
    path = write_jobfile(tmp_path, data)
    loaded = load_realtime_jobfile(path)
    assert loaded.scheduler == "edf"
    assert loaded.utilization_bound == 0.8
    assert [j.to_dict() for j in loaded.jobs] == [j.to_dict() for j in jobs]


def test_jobfile_rejects_unknown_top_level_key(tmp_path):
    data = workload_to_dict(generate_workload(seed=1, jobs=1))
    data["surprise"] = 1
    with pytest.raises(RealtimeError, match="surprise"):
        load_realtime_jobfile(write_jobfile(tmp_path, data))


def test_jobfile_rejects_unknown_realtime_key(tmp_path):
    data = workload_to_dict(generate_workload(seed=1, jobs=1))
    data["realtime"]["quantum"] = 5
    with pytest.raises(RealtimeError, match="quantum"):
        load_realtime_jobfile(write_jobfile(tmp_path, data))


def test_jobfile_rejects_unknown_scheduler(tmp_path):
    data = workload_to_dict(generate_workload(seed=1, jobs=1))
    data["realtime"]["scheduler"] = "fifo"
    with pytest.raises(RealtimeError, match="scheduler"):
        load_realtime_jobfile(write_jobfile(tmp_path, data))


def test_jobfile_rejects_wrong_schema_version(tmp_path):
    data = workload_to_dict(generate_workload(seed=1, jobs=1))
    data["schema_version"] = REALTIME_SCHEMA_VERSION + 1
    with pytest.raises(RealtimeError, match="schema_version"):
        load_realtime_jobfile(write_jobfile(tmp_path, data))


def test_job_entry_requires_period_and_deadline(tmp_path):
    data = workload_to_dict(generate_workload(seed=1, jobs=1))
    del data["realtime"]["jobs"][0]["period_us"]
    with pytest.raises(RealtimeError, match="period_us"):
        load_realtime_jobfile(write_jobfile(tmp_path, data))


def test_job_entry_rejects_unknown_key(tmp_path):
    data = workload_to_dict(generate_workload(seed=1, jobs=1))
    data["realtime"]["jobs"][0]["slack_us"] = 3
    with pytest.raises(RealtimeError, match="slack_us"):
        load_realtime_jobfile(write_jobfile(tmp_path, data))


def test_jobfile_rejects_duplicate_names(tmp_path):
    data = workload_to_dict(generate_workload(seed=1, jobs=1))
    data["realtime"]["jobs"].append(dict(data["realtime"]["jobs"][0]))
    with pytest.raises(RealtimeError, match="unique"):
        load_realtime_jobfile(write_jobfile(tmp_path, data))


def test_runtime_loader_redirects_realtime_jobfiles(tmp_path):
    """The batch loader points at `realtime run` instead of guessing."""
    data = workload_to_dict(generate_workload(seed=1, jobs=1))
    path = write_jobfile(tmp_path, data)
    with pytest.raises(JobError, match="realtime run"):
        load_jobfile(path)
