"""EDF scheduling: deadlines, checkpoint swaps, the ablation claim."""

from dataclasses import replace

import pytest

from repro.core.params import SystemParameters
from repro.realtime.edf import (
    EdfExecutor,
    output_fingerprint,
    run_priority_baseline,
)
from repro.realtime.workloads import generate_workload
from repro.runtime.executor import ExecutorConfig


@pytest.fixture(scope="module")
def params():
    # the benchmark convention: module restores cost a few simulated us
    return replace(SystemParameters.prototype(), pr_speedup=20_000.0)


@pytest.fixture(scope="module")
def config():
    # realtime needs tight reaction: a 25us quantum with a 3-poll
    # completion streak burns most of a period per rotation
    return ExecutorConfig(max_us=20_000.0, quantum_us=5.0, idle_streak=2)


@pytest.fixture(scope="module")
def feasible(params):
    return generate_workload(
        seed=7, jobs=3, utilization=0.6, params=params, deadline_factor=3.0
    )


@pytest.fixture(scope="module")
def feasible_report(params, config, feasible):
    executor = EdfExecutor(params=params, config=config)
    report = executor.run_realtime(feasible)
    return executor, report


def test_feasible_workload_hits_every_deadline(feasible_report):
    executor, report = feasible_report
    assert report.ok
    assert report.hit_rate == 1.0
    assert report.frames_total == 15
    # three jobs on two PRRs: time-sharing is mandatory, and swaps go
    # through the checkpoint path, not the restart path
    assert report.preemptions > 0
    assert report.suspensions_total > 0
    assert executor.checkpoints.saves == executor.checkpoints.restores
    assert executor.checkpoints.saves >= report.suspensions_total


def test_preempted_output_matches_solo_run(params, config, feasible,
                                           feasible_report):
    """Acceptance: suspend/resume is invisible in the output stream."""
    _, shared = feasible_report
    for job, outcome in zip(feasible, shared.jobs):
        assert outcome.suspensions > 0 or job.name == "rt2"
        solo = EdfExecutor(params=params, config=config).run_realtime([job])
        assert solo.jobs[0].fingerprint == outcome.fingerprint
        assert solo.jobs[0].words_out == outcome.words_out


def test_edf_beats_priority_at_overload(params, config):
    """Acceptance: >= 1.0 offered utilization, EDF sustains more hits.

    At 1.2x aggregate demand the utilization-bound admission sheds the
    latest-deadline job and the admitted set stays schedulable; the
    priority baseline thrashes everyone through restarts.
    """
    jobs = generate_workload(
        seed=7, jobs=4, utilization=1.2, params=params, deadline_factor=3.0
    )
    edf = EdfExecutor(
        params=params, config=config, utilization_bound=0.75
    ).run_realtime(jobs)
    prio = run_priority_baseline(jobs, params=params, config=config)
    assert edf.frames_total == prio.frames_total == 20
    assert edf.hits_total >= prio.hits_total + 3
    assert edf.hit_rate >= 1.5 * prio.hit_rate


def test_admission_bound_rejects_excess_demand(params, config):
    jobs = generate_workload(
        seed=7, jobs=2, utilization=1.0, params=params, deadline_factor=3.0
    )
    report = EdfExecutor(
        params=params, config=config, utilization_bound=0.3
    ).run_realtime(jobs)
    reasons = [job.failure_reason for job in report.fleet.jobs]
    assert any("utilization bound" in reason for reason in reasons)


def test_priority_baseline_never_suspends(params, config, feasible):
    report = run_priority_baseline(feasible, params=params, config=config)
    assert report.scheduler == "priority"
    assert report.suspensions_total == 0


def test_fingerprint_is_stable_and_order_sensitive():
    assert output_fingerprint([1, 2, 3]) == output_fingerprint([1, 2, 3])
    assert output_fingerprint([1, 2, 3]) != output_fingerprint([3, 2, 1])
    assert len(output_fingerprint([])) == 8


def test_report_serializes(feasible_report):
    _, report = feasible_report
    data = report.to_dict()
    assert data["scheduler"] == "edf"
    assert len(data["jobs"]) == 3
    for entry in data["jobs"]:
        assert {"name", "fingerprint", "hits", "misses"} <= set(entry)
    text = report.render_text()
    assert "frames" in text and "rt0" in text
