"""Integration tests: VAPRES switching vs the naive baseline, and
multi-switch lifecycles (the paper's Figure 5 scenario end to end)."""

import pytest

from repro.analysis.metrics import max_gap_seconds
from repro.baselines.naive_switching import NaiveSwitcher
from repro.core.switching import ModuleSwitcher
from repro.modules import Iom, MovingAverage
from repro.modules.base import staged
from repro.modules.filters import FirFilter
from repro.modules.sources import sine_wave

from tests.helpers import build_system


def make_scenario(speedup=500.0):
    system = build_system(pr_speedup=speedup)
    iom = Iom("io0", source=sine_wave(count=10_000_000))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(MovingAverage("filterA", window=4), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    for name in ("filterA", "filterB"):
        system.register_module(
            name, lambda n=name: staged(MovingAverage(n, window=4))
        )
        for prr in ("rsb0.prr0", "rsb0.prr1"):
            system.repository.preload_to_sdram(name, prr)
    return system, iom, ch_in, ch_out


def test_vapres_switch_beats_naive_by_orders_of_magnitude():
    """The paper's central claim, quantified head to head."""
    # --- VAPRES methodology ------------------------------------------
    system, iom, ch_in, ch_out = make_scenario()
    system.run_for_us(30)
    report = system.microblaze.run_to_completion(
        ModuleSwitcher(system).switch(
            old_prr="rsb0.prr0",
            new_prr="rsb0.prr1",
            new_module="filterB",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        ),
        "switch",
    )
    system.run_for_us(30)
    vapres_gap = max_gap_seconds(iom.receive_times)

    # --- naive baseline ----------------------------------------------
    system2, iom2, ch_in2, ch_out2 = make_scenario()
    system2.run_for_us(30)
    naive = system2.microblaze.run_to_completion(
        NaiveSwitcher(system2).switch(
            prr="rsb0.prr0",
            new_module="filterB",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in2,
            output_channel=ch_out2,
        ),
        "naive",
    )
    system2.run_for_us(30)
    naive_gap = max_gap_seconds(iom2.receive_times)

    # both reconfigured for the same duration...
    assert report.reconfig_seconds == pytest.approx(
        naive.reconfig_seconds, rel=0.01
    )
    # ...but only the naive flow shows it at the output
    assert naive_gap >= naive.reconfig_seconds
    assert vapres_gap < report.reconfig_seconds / 10
    assert naive_gap / vapres_gap > 20


def test_ping_pong_switches():
    """A -> B -> A' repeated swapping between the two PRRs."""
    system, iom, ch_in, ch_out = make_scenario()
    system.run_for_us(20)
    switcher = ModuleSwitcher(system)
    current_in, current_out = ch_in, ch_out
    slots = ["rsb0.prr0", "rsb0.prr1"]
    modules = ["filterB", "filterA", "filterB"]
    for index, module_name in enumerate(modules):
        old = slots[index % 2]
        new = slots[(index + 1) % 2]
        report = system.microblaze.run_to_completion(
            switcher.switch(
                old_prr=old,
                new_prr=new,
                new_module=module_name,
                upstream_slot="rsb0.iom0",
                downstream_slot="rsb0.iom0",
                input_channel=current_in,
                output_channel=current_out,
            ),
            f"switch{index}",
        )
        assert report.words_lost == 0
        current_in = report.input_channel
        current_out = report.output_channel
        system.run_for_us(20)
    assert system.prr("rsb0.prr1").module.name == "filterB"
    # the vacated PRR keeps its halted module until overwritten by PR
    assert system.prr("rsb0.prr0").module.halted
    # the stream never showed a reconfiguration-scale gap
    gap = max_gap_seconds(iom.receive_times)
    assert gap < 144e-6 / 10  # scaled array2icap time / 10


def test_switch_between_different_filter_types():
    """Swap a moving average for an FIR; state lengths differ, the
    protocol adapts because each module declares its own registers."""
    system = build_system(pr_speedup=500.0)
    iom = Iom("io0", source=sine_wave(count=1_000_000))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(MovingAverage("avg", window=4), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")

    def fir_factory():
        # fresh FIR; the old module's state is read but a different-type
        # successor ignores it (restore buffer length mismatch is the
        # application designer's contract -- here we just don't send it)
        return staged(FirFilter.from_coefficients("fir", [0.5, 0.5]))

    system.register_module("fir", fir_factory)
    system.repository.preload_to_sdram("fir", "rsb0.prr1")
    system.run_for_us(20)

    switcher = ModuleSwitcher(system)
    report = system.microblaze.run_to_completion(
        switcher.switch(
            old_prr="rsb0.prr0",
            new_prr="rsb0.prr1",
            new_module="fir",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        ),
        "heteroswitch",
    )
    system.run_for_us(20)
    new_module = system.prr("rsb0.prr1").module
    assert new_module.name == "fir"
    assert new_module.samples_out > 0
    assert report.words_lost == 0


def test_switch_with_inband_eos_lookalikes_in_the_data():
    """The stream legitimately contains -1 (== the EOS word's bit
    pattern); armed one-shot detection means the switch still completes
    and no data word is misread as end-of-stream."""
    import itertools

    from repro.modules.sources import from_samples
    from repro.modules.transforms import PassThrough
    from repro.modules.base import staged as stage

    pattern = [-1, 5, -1, -1, 7]
    count = 4000
    system = build_system(pr_speedup=500.0)
    samples = list(itertools.islice(itertools.cycle(pattern), count))
    iom = Iom("io0", source=from_samples(samples))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(PassThrough("a"), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.register_module("b", lambda: stage(PassThrough("b")))
    system.repository.preload_to_sdram("b", "rsb0.prr1")
    system.run_for_us(10)
    report = system.microblaze.run_to_completion(
        ModuleSwitcher(system).switch(
            old_prr="rsb0.prr0",
            new_prr="rsb0.prr1",
            new_module="b",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        ),
        "switch",
    )
    system.run_for_us(200)
    assert report.words_lost == 0
    assert iom.received == samples  # every -1 survived as data
    assert iom.eos_count == 1  # exactly the one real EOS of the switch


def test_monitoring_guided_swap():
    """Step 2 realised: the MicroBlaze watches monitoring words and only
    switches when the stream actually changes character."""
    from repro.control.microblaze import FslGet
    from repro.modules.sources import step_change
    from repro.modules.transforms import MinMaxTracker

    system = build_system(pr_speedup=500.0)
    iom = Iom(
        "io0", source=step_change(10, 30_000, change_at=3000, count=1_000_000)
    )
    system.attach_iom("rsb0.iom0", iom)
    monitor_module = MinMaxTracker("tracker", monitor_interval=64)
    system.place_module_directly(monitor_module, "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.register_module(
        "clipper", lambda: staged(MovingAverage("clipper", window=2))
    )
    system.repository.preload_to_sdram("clipper", "rsb0.prr1")
    slot = system.prr("rsb0.prr0")

    def controller():
        # watch monitoring words until the signal amplitude jumps
        while True:
            data, control = yield FslGet(slot.fsl_to_processor)
            if not control and data >= 30_000:
                break
        switcher = ModuleSwitcher(system)
        report = yield from switcher.switch(
            old_prr="rsb0.prr0",
            new_prr="rsb0.prr1",
            new_module="clipper",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        )
        return report

    system.start()
    report = system.microblaze.run_to_completion(controller(), "adaptive")
    assert report.new_module == "clipper"
    # the swap fired after the step change reached the monitor
    assert report.start_ps / 1e12 * 100e6 > 3000  # later than sample 3000
