"""Smoke tests: every example script runs to completion.

The examples are part of the public API surface; this keeps them from
rotting.  The two switching-heavy demos are exercised at a higher
``PR_SPEEDUP`` via attribute patching to keep the suite fast.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name):
    module_globals = runpy.run_path(
        str(EXAMPLES / name), run_name="not_main"
    )
    module_globals["main"]()
    return module_globals


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "512 filtered words out" in out


def test_kpn_pipeline_runs(capsys):
    run_example("kpn_image_pipeline.py")
    out = capsys.readouterr().out
    assert "sink received 2000" in out
    assert "0 words lost" in out


def test_design_flows_runs(capsys):
    run_example("design_flows.py")
    out = capsys.readouterr().out
    assert "9421 slices" in out
    assert "deployed 2 hardware modules" in out


@pytest.mark.slow
def test_adaptive_filter_swap_runs(capsys):
    run_example("adaptive_filter_swap.py")
    out = capsys.readouterr().out
    assert "never saw the reconfiguration" in out


@pytest.mark.slow
def test_fault_tolerant_stream_runs(capsys):
    run_example("fault_tolerant_stream.py")
    out = capsys.readouterr().out
    assert "the stream never stopped" in out
