"""Integration test: both design flows end to end (paper Figure 6).

Base system flow -> live system -> application flow -> install ->
timed runtime assembly -> streaming -> teardown.
"""

from dataclasses import replace


from repro.core import SystemParameters
from repro.core.assembly import RuntimeAssembler
from repro.core.kpn import KahnProcessNetwork
from repro.flows.application import ApplicationFlow
from repro.flows.base_system import BaseSystemFlow
from repro.modules.filters import FirFilter, q15
from repro.modules.iom import Iom
from repro.modules.sources import ramp
from repro.modules.transforms import Scaler


def test_full_designer_journey():
    # ---- system designer: base system flow -------------------------
    params = replace(SystemParameters.prototype(), pr_speedup=1000.0)
    base_flow = BaseSystemFlow(params)
    base_build = base_flow.run()
    assert base_build.report["fits"]
    assert "AREA_GROUP" in base_build.ucf

    # ---- application designer: application flow --------------------
    kpn = KahnProcessNetwork("smooth-and-scale")
    kpn.add_iom("io")
    kpn.add_module(
        "smooth",
        lambda: FirFilter.from_coefficients("smooth", [0.5, 0.5]),
    )
    kpn.add_module("gain", lambda: Scaler("gain", gain=q15(2.0)))
    kpn.connect("io", "smooth")
    kpn.connect("smooth", "gain")
    kpn.connect("gain", "io")
    app_flow = ApplicationFlow(base_build)
    app_build = app_flow.run(kpn)
    assert len(app_build.bitstreams) == 4  # 2 modules x 2 PRRs

    # ---- deployment: live system, install, preload, assemble -------
    system = base_build.instantiate()
    app_flow.install(app_build, system)
    for bitstream in app_build.bitstreams:
        system.repository.preload_to_sdram(
            bitstream.module_name, bitstream.prr_name
        )
    iom = Iom("io", source=ramp(count=200))
    system.attach_iom("rsb0.iom0", iom)
    assembler = RuntimeAssembler(system)
    system.start()
    app = system.microblaze.run_to_completion(
        assembler.assemble_timed(kpn), "deploy"
    )
    system.run_for_us(30)

    # ---- the assembled RSPS streams correctly -----------------------
    # FIR [0.5, 0.5] in Q15 floors: y[i] = (x[i] + x[i-1]) >> 1; then x2
    expected = [2 * ((i + max(i - 1, 0)) >> 1) for i in range(200)]
    assert iom.received == expected

    # ---- teardown frees the fabric ----------------------------------
    assert app.teardown() == 0
    assert system.rsbs[0].router.established_count == 0


def test_journey_reports_fragmentation():
    params = SystemParameters.prototype()
    base_build = BaseSystemFlow(params).run()
    kpn = KahnProcessNetwork("tiny")
    kpn.add_iom("io")
    kpn.add_module("m", lambda: Scaler("m", gain=q15(1.0)))
    kpn.connect("io", "m")
    kpn.connect("m", "io")
    flow = ApplicationFlow(base_build)
    build = flow.run(kpn)
    _slices, prr_slices, wasted = flow.fragmentation_report(build)["m"]
    assert prr_slices == 640
    assert wasted > 0.5  # a tiny scaler wastes most of a 640-slice PRR
