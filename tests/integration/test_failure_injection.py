"""Failure-injection tests: protocol misuse and adverse timing.

Exercises the defensive edges of the system: reconfiguring live PRRs,
contending for the single ICAP without the scheduler, under-reading state
words, driving channels before enabling consumers, and monitoring-word
overflow.  Each failure must either be contained with a defined
behaviour or raise a precise error -- never corrupt unrelated state.
"""

import pytest

from repro.core.switching import ModuleSwitcher
from repro.modules import Iom, MovingAverage, PassThrough
from repro.modules.base import CMD_START, staged
from repro.modules.sources import ramp, sine_wave
from repro.pr.reconfig import ReconfigError

from tests.helpers import build_system


def test_reconfiguring_a_streaming_prr_buffers_safely():
    """PR on a PRR whose input channel stays live: words accumulate in the
    (static-region) consumer FIFO during the write and are processed by
    the new module afterwards -- nothing is lost, nothing crashes."""
    system = build_system()
    iom = Iom("io", source=ramp(count=400))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(PassThrough("old"), "rsb0.prr0")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.register_module("new", lambda: PassThrough("new"))
    system.repository.preload_to_sdram("new", "rsb0.prr0")
    system.run_for_cycles(100)
    received_before = len(iom.received)
    system.engine.array2icap("new", "rsb0.prr0")
    system.run_for_ms(0.2)  # reconfig (scaled) completes mid-stream
    system.run_for_cycles(1000)
    slot = system.prr("rsb0.prr0")
    assert slot.module.name == "new"
    assert slot.consumers[0].words_discarded == 0
    # the words emitted during reconfiguration were buffered and processed
    assert len(iom.received) == 400 - (400 - len(iom.received))
    assert len(iom.received) > received_before
    total_through = received_before + slot.module.samples_out
    assert total_through <= 400


def test_unscheduled_concurrent_reconfig_raises_cleanly():
    system = build_system()
    system.register_module("m", lambda: PassThrough("m"))
    for prr in ("rsb0.prr0", "rsb0.prr1"):
        system.repository.preload_to_sdram("m", prr)
    system.engine.array2icap("m", "rsb0.prr0")
    with pytest.raises(ReconfigError, match="busy"):
        system.engine.array2icap("m", "rsb0.prr1")
    # the rejected PRR was never isolated
    assert system.prr("rsb0.prr1").slice_macros[0].enabled
    system.sim.run()
    assert system.prr("rsb0.prr0").module is not None


def test_incomplete_state_restore_is_contained():
    """Sending fewer state words than the module expects, then starting:
    the module starts with its power-on state (partial words pending);
    defined, observable, and non-corrupting."""
    system = build_system()
    module = staged(MovingAverage("m", window=2))
    slot = system.place_module_directly(module, "rsb0.prr0")
    slot.fsl_to_module.master_write(1234)  # 1 of 4 expected words
    slot.fsl_to_module.master_write(CMD_START, control=True)
    system.run_for_cycles(20)
    assert module.started
    assert module.w0 == 0  # restore never applied
    assert len(module._restore_buffer) == 1


def test_gated_consumer_counts_lost_words():
    """Driving a channel whose consumer was never enabled: words are
    dropped at the gate and the counter exposes the software bug."""
    system = build_system()
    iom = Iom("io", source=ramp(count=50))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(PassThrough("m"), "rsb0.prr0")
    channel = system.rsbs[0].router.establish(
        0, 1,
        system.iom_slot("rsb0.iom0").producers[0],
        system.prr("rsb0.prr0").consumers[0],
    )
    system.iom_slot("rsb0.iom0").producers[0].fifo_ren = True
    # FIFO_wen deliberately left low
    system.run_for_cycles(100)
    consumer = system.prr("rsb0.prr0").consumers[0]
    assert consumer.words_received == 0
    assert consumer.words_gated == 50


def test_monitoring_overflow_is_best_effort():
    """With nobody draining the r-FSL, monitoring words saturate the link
    and are dropped silently; the data path is unaffected."""
    system = build_system()
    iom = Iom("io", source=ramp(count=3000))
    system.attach_iom("rsb0.iom0", iom)
    module = MovingAverage("m", window=2, monitor_interval=1)
    system.place_module_directly(module, "rsb0.prr0")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.run_for_cycles(6000)
    slot = system.prr("rsb0.prr0")
    assert len(slot.fsl_to_processor.fifo) == 512  # saturated
    assert len(iom.received) == 3000  # stream unharmed


def test_switch_with_wrong_channel_handles_are_rejected():
    """Passing a released channel into the switcher fails loudly at the
    release step instead of silently corrupting routing state."""
    from repro.comm.router import RoutingError

    system = build_system(pr_speedup=1000.0)
    iom = Iom("io", source=sine_wave(count=100_000))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(MovingAverage("a", window=2), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.register_module(
        "b", lambda: staged(MovingAverage("b", window=2))
    )
    system.repository.preload_to_sdram("b", "rsb0.prr1")
    system.close_stream(ch_in)  # sabotage: handle already released
    system.run_for_us(5)
    with pytest.raises(RoutingError, match="not established|released"):
        system.microblaze.run_to_completion(
            ModuleSwitcher(system).switch(
                old_prr="rsb0.prr0",
                new_prr="rsb0.prr1",
                new_module="b",
                upstream_slot="rsb0.iom0",
                downstream_slot="rsb0.iom0",
                input_channel=ch_in,
                output_channel=ch_out,
            ),
            "bad-switch",
        )


def test_module_exception_is_attributed():
    """A module whose process() raises produces a traceback at the clock
    edge naming the module -- the simulation fails fast, not silently."""

    class Broken(PassThrough):
        def process(self, sample):
            raise RuntimeError("stuck-at fault in multiplier")

    system = build_system()
    iom = Iom("io", source=ramp(count=10))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(Broken("broken"), "rsb0.prr0")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    with pytest.raises(RuntimeError, match="stuck-at fault"):
        system.run_for_cycles(50)
