"""Integration tests: independent applications sharing one base system.

The multipurpose-base-system argument (Section I): several applications
coexist on one VAPRES instance, each owning PRRs and channels, with the
single ICAP shared through the reconfiguration scheduler.
"""

import pytest

from repro.core import RsbParameters, SystemParameters, VapresSystem
from repro.modules import Iom
from repro.modules.filters import MovingAverage
from repro.modules.sources import ramp
from repro.modules.transforms import DeltaEncoder, PassThrough
from repro.pr.scheduler import ReconfigScheduler


def build_shared_system():
    params = SystemParameters(
        board="ML402",
        pr_speedup=1000.0,
        rsbs=[
            RsbParameters(
                name="rsb0",
                num_prrs=4,
                num_ioms=2,
                iom_positions=[0, 5],
            )
        ],
    )
    return VapresSystem(params)


def test_two_applications_stream_concurrently():
    system = build_shared_system()
    iom_a = Iom("a", source=ramp(count=500))
    iom_b = Iom("b", source=ramp(count=500, start=10_000))
    system.attach_iom("rsb0.iom0", iom_a)
    system.attach_iom("rsb0.iom1", iom_b)
    # app A: iom0 -> prr0 -> prr1 -> iom0 (rightward + back)
    system.place_module_directly(PassThrough("a0"), "rsb0.prr0")
    system.place_module_directly(MovingAverage("a1", window=2), "rsb0.prr1")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.prr1")
    system.open_stream("rsb0.prr1", "rsb0.iom0")
    # app B: iom1 -> prr3 -> prr2 -> iom1 (leftward lanes)
    system.place_module_directly(PassThrough("b0"), "rsb0.prr3")
    system.place_module_directly(DeltaEncoder("b1"), "rsb0.prr2")
    system.open_stream("rsb0.iom1", "rsb0.prr3")
    system.open_stream("rsb0.prr3", "rsb0.prr2")
    system.open_stream("rsb0.prr2", "rsb0.iom1")

    system.run_for_cycles(2500)
    assert len(iom_a.received) == 500
    assert len(iom_b.received) == 500
    # app B is delta-encoded: first word 10000, then all 1s
    assert iom_b.received[0] == 10_000
    assert set(iom_b.received[1:]) == {1}
    # no interference: every consumer clean
    discards = [
        c.words_discarded for s in system.rsbs[0].slots for c in s.consumers
    ]
    assert sum(discards) == 0


def test_applications_share_icap_through_scheduler():
    """Both apps deploy simultaneously; the scheduler serialises the four
    reconfigurations on the one ICAP, FIFO order preserved."""
    system = build_shared_system()
    for name in ("a0", "a1", "b0", "b1"):
        system.register_module(name, lambda n=name: PassThrough(n))
        for slot in system.prr_slots:
            system.repository.preload_to_sdram(name, slot.name)
    scheduler = ReconfigScheduler(system.engine)
    requests = [
        scheduler.submit("a0", "rsb0.prr0"),
        scheduler.submit("b0", "rsb0.prr3"),
        scheduler.submit("a1", "rsb0.prr1"),
        scheduler.submit("b1", "rsb0.prr2"),
    ]
    assert scheduler.pending == 4
    # clocks are not started: the queue drains through transfer events
    # alone, so sim.run() terminates when the last reconfiguration lands
    system.sim.run()
    assert all(request.done for request in requests)
    # serialised: no two transfers overlap
    history = system.icap.history
    for earlier, later in zip(history, history[1:]):
        assert later.start_ps >= earlier.end_ps
    assert {slot.module.name for slot in system.prr_slots} == {
        "a0", "a1", "b0", "b1",
    }


def test_channel_capacity_is_the_shared_resource():
    """Apps contend for switch-box lanes and module ports: once app A
    holds them, app B's establishment fails cleanly (the API's 0 return)."""
    from repro.comm.router import RoutingError

    system = build_shared_system()
    for index, slot in enumerate(system.prr_slots):
        system.place_module_directly(PassThrough(f"m{index}"), slot.name)
    # app A claims prr3's single consumer port via a long channel
    assert system.open_stream("rsb0.iom0", "rsb0.prr3") is not None
    state = system.rsbs[0].router.comm_state()
    assert state.free_right[2] == 1  # one of kr=2 lanes left mid-array
    assert not state.can_route(1, 4)  # prr3's module port is taken
    with pytest.raises(RoutingError):
        system.open_stream("rsb0.prr0", "rsb0.prr3")
    # a second long rightward channel takes the last lane of the segment
    assert system.open_stream("rsb0.prr0", "rsb0.iom1") is not None
    state = system.rsbs[0].router.comm_state()
    assert state.free_right[2] == 0
    with pytest.raises(RoutingError):
        system.open_stream("rsb0.prr1", "rsb0.iom1")
