"""Integration tests: hardware/software co-designed RSPSs (paper Sec. I).

An RSPS is "a set of hardware and software modules ... connected
together"; software modules execute on the MicroBlaze and exchange stream
data with the fabric over FSLs.  These scenarios put a software stage in
the middle of a hardware pipeline and bridge streams between two RSBs
through the processor.
"""


from repro.control.microblaze import FslGet, FslPut
from repro.core import RsbParameters, SystemParameters, VapresSystem
from repro.modules import FslToStream, Iom, StreamToFsl
from repro.modules.sources import ramp
from repro.modules.state import from_u32, to_u32

from tests.helpers import build_system


def test_software_stage_in_hardware_pipeline():
    """IOM -> StreamToFsl(prr0) -> software square -> FslToStream(prr1)
    -> IOM: a software module as a full KPN node."""
    count = 300
    system = build_system()
    iom = Iom("io", source=ramp(count=count))
    system.attach_iom("rsb0.iom0", iom)
    to_sw = StreamToFsl("to_sw")
    from_sw = FslToStream("from_sw")
    slot_a = system.place_module_directly(to_sw, "rsb0.prr0")
    slot_b = system.place_module_directly(from_sw, "rsb0.prr1")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr1", "rsb0.iom0")

    def software_square():
        for _ in range(count):
            data, _control = yield FslGet(slot_a.fsl_to_processor)
            value = from_u32(data)
            yield FslPut(slot_b.fsl_to_module, to_u32(value * value))
        return "done"

    system.start()
    result = system.microblaze.run_to_completion(software_square(), "square")
    system.run_for_us(20)
    assert result == "done"
    assert iom.received == [v * v for v in range(count)]
    assert to_sw.words_forwarded == count
    assert from_sw.words_injected == count


def test_software_stage_throughput_is_cpu_bound():
    """The software stage runs at FSL-access speed (~4+ cycles/word),
    well below the 1 word/cycle fabric rate -- exactly the bottleneck
    argument for hardware modules (Section II, Ullmann comparison)."""
    count = 400
    system = build_system()
    iom = Iom("io", source=ramp(count=10_000_000))
    system.attach_iom("rsb0.iom0", iom)
    slot_a = system.place_module_directly(StreamToFsl("to_sw"), "rsb0.prr0")
    slot_b = system.place_module_directly(FslToStream("from_sw"), "rsb0.prr1")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr1", "rsb0.iom0")

    def relay():
        for _ in range(count):
            data, _ = yield FslGet(slot_a.fsl_to_processor)
            yield FslPut(slot_b.fsl_to_module, data)

    system.start()
    start = system.sim.now
    system.microblaze.run_to_completion(relay(), "relay")
    cycles = (system.sim.now - start) / system.system_clock.period_ps
    cycles_per_word = cycles / count
    assert cycles_per_word >= 4


def test_cross_rsb_stream_bridged_by_processor():
    """Two RSBs cannot share switch-box channels; the MicroBlaze bridges
    them through FSLs (the SystemError_ hint made real)."""
    params = SystemParameters(
        rsbs=[
            RsbParameters(name="a", num_prrs=1, num_ioms=1, iom_positions=[0]),
            RsbParameters(name="b", num_prrs=1, num_ioms=1, iom_positions=[0]),
        ]
    )
    system = VapresSystem(params)
    count = 200
    src = Iom("src", source=ramp(count=count))
    dst = Iom("dst")
    system.attach_iom("a.iom0", src)
    system.attach_iom("b.iom0", dst)
    bridge_out = system.place_module_directly(StreamToFsl("bridge_out"), "a.prr0")
    bridge_in = system.place_module_directly(FslToStream("bridge_in"), "b.prr0")
    system.open_stream("a.iom0", "a.prr0")
    system.open_stream("b.prr0", "b.iom0")
    slot_out = system.prr("a.prr0")
    slot_in = system.prr("b.prr0")

    def bridge():
        for _ in range(count):
            data, _ = yield FslGet(slot_out.fsl_to_processor)
            yield FslPut(slot_in.fsl_to_module, data)

    system.start()
    system.microblaze.run_to_completion(bridge(), "bridge")
    system.run_for_us(20)
    assert dst.received == list(range(count))
