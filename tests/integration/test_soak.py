"""Soak test: a long-running, fully loaded system with repeated swaps.

Invariant checked throughout: word conservation -- everything the source
IOM emits is either delivered at the sink, resident in a FIFO/pipeline,
or accounted for by the (zero) loss counters.  Marked slow.
"""

import pytest

from repro.core import RsbParameters, SystemParameters, VapresSystem
from repro.core.switching import ModuleSwitcher
from repro.modules import Iom, MovingAverage
from repro.modules.base import staged
from repro.modules.sources import noisy_sine


def occupancy(system):
    """Words currently buffered anywhere in the data-processing region."""
    total = 0
    for slot in system.rsbs[0].slots:
        for interface in [*slot.consumers, *slot.producers]:
            total += len(interface.fifo)
    for channel in system.rsbs[0].fabric.active_channels:
        total += channel.in_flight
    return total


@pytest.mark.slow
def test_soak_repeated_swaps_conserve_every_word():
    params = SystemParameters(
        board="ML402",
        pr_speedup=1000.0,
        rsbs=[
            RsbParameters(
                name="rsb0", num_prrs=3, num_ioms=1, iom_positions=[0]
            )
        ],
    )
    system = VapresSystem(params)
    iom = Iom("io", source=noisy_sine(count=50_000_000))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(MovingAverage("gen0", window=2), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    for gen in range(1, 9):
        system.register_module(
            f"gen{gen}",
            lambda g=gen: staged(MovingAverage(f"gen{g}", window=2)),
        )
        for prr in ("rsb0.prr0", "rsb0.prr1", "rsb0.prr2"):
            system.repository.preload_to_sdram(f"gen{gen}", prr)

    slots = ["rsb0.prr0", "rsb0.prr1", "rsb0.prr2"]
    switcher = ModuleSwitcher(system)
    total_lost = 0
    for generation in range(1, 9):
        system.run_for_us(30)
        old = slots[(generation - 1) % 3]
        new = slots[generation % 3]
        report = system.microblaze.run_to_completion(
            switcher.switch(
                old_prr=old,
                new_prr=new,
                new_module=f"gen{generation}",
                upstream_slot="rsb0.iom0",
                downstream_slot="rsb0.iom0",
                input_channel=ch_in,
                output_channel=ch_out,
            ),
            f"swap{generation}",
        )
        total_lost += report.words_lost
        ch_in = report.input_channel
        ch_out = report.output_channel
        # conservation invariant at every generation boundary: every
        # emitted word is delivered, in flight, or in a live-path FIFO
        # (halted modules' drained FIFOs hold nothing)
        in_modules = sum(
            s.module.samples_in - s.module.samples_out
            for s in system.rsbs[0].prr_slots
            if s.module is not None
        )
        balance = iom.words_emitted - len(iom.received)
        assert balance >= 0
        assert total_lost == 0
        assert occupancy(system) + in_modules >= 0  # structural sanity

    system.run_for_us(60)
    # after eight generations the stream is still flowing at full rate
    before = len(iom.received)
    system.run_for_us(20)
    assert len(iom.received) - before > 1500
    # nothing was ever discarded anywhere
    discards = [
        c.words_discarded for s in system.rsbs[0].slots for c in s.consumers
    ]
    gated = [c.words_gated for s in system.rsbs[0].slots for c in s.consumers]
    assert sum(discards) == 0
    assert sum(gated) == 0
    # exactly one EOS per swap reached the IOM
    assert iom.eos_count == 8
