"""Differential tests: fast path vs event heap on full system scenarios.

These are the acceptance tests for the compiled-schedule engine: the
complete Figure 5 switching methodology and a runtime fleet batch are
executed twice -- once with the fast path, once on the pure event heap --
and every externally observable result must be identical: received
words and their timestamps, methodology steps, words lost, job
telemetry, final simulation time and the processed-event count.
"""

from dataclasses import replace

from repro.core.params import SystemParameters
from repro.core.switching import ModuleSwitcher
from repro.modules import Iom, MovingAverage
from repro.modules.base import staged
from repro.modules.sources import sine_wave
from repro.runtime import (
    ExecutorConfig,
    JobExecutor,
    SourceSpec,
    StageSpec,
    StreamJob,
)


def run_fig5(fastpath):
    params = replace(SystemParameters.prototype(), pr_speedup=1000.0)
    from repro.core.system import VapresSystem

    system = VapresSystem(params)
    system.sim.set_fastpath(fastpath)
    iom = Iom("io0", source=sine_wave(count=10_000_000))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(MovingAverage("filterA", window=4), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.register_module(
        "filterB", lambda: staged(MovingAverage("filterB", window=4))
    )
    system.repository.preload_to_sdram("filterB", "rsb0.prr1")
    system.run_for_us(20)
    report = system.microblaze.run_to_completion(
        ModuleSwitcher(system).switch(
            old_prr="rsb0.prr0",
            new_prr="rsb0.prr1",
            new_module="filterB",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        ),
        "switch",
    )
    system.run_for_us(20)
    return {
        "received": list(iom.received),
        "receive_times": list(iom.receive_times),
        "emit_times": list(iom.emit_times),
        "steps": [s for s, _, _ in report.steps],
        "words_lost": report.words_lost,
        "state_words": list(report.state_words),
        "reconfig_seconds": report.reconfig_seconds,
        "now": system.sim.now,
        "events_processed": system.sim.events_processed,
        "cycles": system.system_clock.cycles,
    }


def test_fig5_switch_identical_under_fastpath():
    heap = run_fig5(fastpath=False)
    fast = run_fig5(fastpath=True)
    assert fast == heap
    assert heap["steps"] == list(range(1, 10))
    assert heap["words_lost"] == 0


def run_fleet(fastpath):
    params = replace(SystemParameters.prototype(), pr_speedup=1000.0)
    config = ExecutorConfig(
        quantum_us=25.0, max_us=100_000.0, use_fastpath=fastpath
    )
    executor = JobExecutor(params=params, config=config)
    jobs = [
        StreamJob(
            name="j0",
            stages=[StageSpec("moving_average", {"window": 4})],
            source=SourceSpec("sine", count=300, params={"period": 64}),
        ),
        StreamJob(
            name="j1",
            stages=[StageSpec("delta_encoder")],
            source=SourceSpec("sine", count=300, params={"period": 64}),
        ),
    ]
    report = executor.run(jobs)
    data = report.to_dict()
    data.pop("wall_seconds", None)
    for job in data.get("jobs", []):
        job.pop("wall_seconds", None)
    return data, executor.system.sim


def test_fleet_serving_identical_under_fastpath():
    heap, sim_h = run_fleet(fastpath=False)
    fast, sim_f = run_fleet(fastpath=True)
    assert fast == heap
    assert sim_f.now == sim_h.now
    assert sim_f.events_processed == sim_h.events_processed
    assert sim_f.fastpath_stats["edges"] > 0
    assert sim_h.fastpath_stats["edges"] == 0
