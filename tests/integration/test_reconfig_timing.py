"""Integration tests: full-fidelity reconfiguration timing (Section V.B).

These run with ``pr_speedup = 1`` and measure with the xps_timer exactly as
the paper did.  Clocks are left unstarted so the only events are the timed
ICAP transfers -- the measurement does not require stepping 100M fabric
cycles.
"""

import pytest

from repro.core import SystemParameters, VapresSystem
from repro.modules.transforms import PassThrough


@pytest.fixture
def system():
    system = VapresSystem(SystemParameters.prototype())  # speedup = 1
    system.register_module("mod", lambda: PassThrough("mod"))
    return system


def test_cf2icap_takes_1_043_seconds(system):
    """Paper: ~104.3M cycles at 100 MHz = 1.043 s for the 640-slice PRR."""
    timer = system.timer
    timer.start()
    transfer = system.engine.cf2icap("mod", "rsb0.prr0")
    system.sim.run()
    cycles = timer.stop()
    assert timer.cycles_to_seconds(cycles) == pytest.approx(1.043, rel=0.01)
    assert cycles == pytest.approx(104_300_000, rel=0.01)
    assert transfer.done


def test_cf2icap_split_95_3_to_4_7(system):
    bitstream = system.repository.lookup("mod", "rsb0.prr0")
    breakdown = system.engine.cf2icap_breakdown(bitstream)
    total = sum(breakdown.values())
    assert breakdown["cf_to_buffer"] / total == pytest.approx(0.953, abs=0.005)


def test_array2icap_takes_71_94_ms(system):
    system.repository.preload_to_sdram("mod", "rsb0.prr1")
    timer = system.timer
    timer.start()
    system.engine.array2icap("mod", "rsb0.prr1")
    system.sim.run()
    cycles = timer.stop()
    assert timer.cycles_to_seconds(cycles) == pytest.approx(0.07194, rel=0.01)
    assert cycles == pytest.approx(7_194_000, rel=0.01)


def test_speedup_ratio_cf_vs_array(system):
    """The paper's headline: preloading to SDRAM is ~14.5x faster."""
    bitstream = system.repository.lookup("mod", "rsb0.prr0")
    cf = sum(system.engine.cf2icap_breakdown(bitstream).values())
    array = sum(system.engine.array2icap_breakdown(bitstream).values())
    assert cf / array == pytest.approx(1.043 / 0.07194, rel=0.02)


def test_module_loaded_after_full_fidelity_reconfig(system):
    system.repository.preload_to_sdram("mod", "rsb0.prr0")
    system.engine.array2icap("mod", "rsb0.prr0")
    system.sim.run()
    assert system.prr("rsb0.prr0").module.name == "mod"
