"""Integration tests: multi-module streaming pipelines on a live system."""

import pytest

from repro.core import RsbParameters, SystemParameters, VapresSystem
from repro.core.assembly import RuntimeAssembler
from repro.core.kpn import KahnProcessNetwork
from repro.modules import Iom, MovingAverage, Scaler, StreamMerger, StreamSplitter
from repro.modules.filters import Q15_ONE, FirFilter, q15
from repro.modules.sources import noisy_sine, ramp
from repro.modules.transforms import Crc32, Decimator

from tests.helpers import build_system


def test_two_stage_pipeline_exact_values():
    system = build_system()
    iom = Iom("io", source=ramp(count=100))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(Scaler("x2", gain=q15(2.0)), "rsb0.prr0")
    system.place_module_directly(Scaler("x4", gain=q15(4.0)), "rsb0.prr1")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.prr1")
    system.open_stream("rsb0.prr1", "rsb0.iom0")
    system.run_for_cycles(400)
    assert iom.received == [8 * v for v in range(100)]


def test_pipeline_throughput_one_word_per_cycle():
    """End-to-end rate of a full IOM->PRR->PRR->IOM loop is ~1 word/cycle."""
    system = build_system()
    iom = Iom("io", source=ramp(count=100_000))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(Crc32("crc"), "rsb0.prr0")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom0")
    cycles = 2000
    system.run_for_cycles(cycles)
    assert len(iom.received) >= 0.9 * cycles


def test_fir_pipeline_filters_noise():
    system = build_system()
    iom = Iom("io", source=noisy_sine(amplitude=10_000, period=32,
                                      noise_amplitude=2_000, count=600))
    system.attach_iom("rsb0.iom0", iom)
    smoother = FirFilter.from_coefficients("lp", [0.25, 0.25, 0.25, 0.25])
    system.place_module_directly(smoother, "rsb0.prr0")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.run_for_cycles(3000)
    assert len(iom.received) == 600
    # smoothing keeps the envelope but attenuates extremes
    assert max(abs(v) for v in iom.received) < 11_000


def test_slow_module_backpressures_without_loss():
    """A 4-cycle/sample module throttles the whole chain; nothing is lost."""
    system = build_system()
    iom = Iom("io", source=ramp(count=2000))
    system.attach_iom("rsb0.iom0", iom)
    slow = MovingAverage("slow", window=2, cycles_per_sample=4)
    system.place_module_directly(slow, "rsb0.prr0")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.run_for_cycles(3000)
    received = len(iom.received)
    assert 600 <= received <= 800  # ~1 word per 4 cycles
    discards = [
        c.words_discarded for s in system.rsbs[0].slots for c in s.consumers
    ]
    assert discards == [0, 0, 0]
    system.run_for_cycles(6000)
    assert len(iom.received) == 2000  # eventually everything arrives


def test_lcd_frequency_halving_halves_throughput():
    system = build_system()
    iom = Iom("io", source=ramp(count=100_000))
    system.attach_iom("rsb0.iom0", iom)
    module = Crc32("crc")
    slot = system.place_module_directly(module, "rsb0.prr0")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.run_for_cycles(1000)
    fast_count = len(iom.received)
    slot.bufgmux.select(1)  # switch the LCD to 50 MHz at runtime
    before = len(iom.received)
    system.run_for_cycles(1000)
    slow_count = len(iom.received) - before
    assert slow_count == pytest.approx(fast_count / 2, rel=0.1)


def test_decimator_reduces_output_rate():
    system = build_system()
    iom = Iom("io", source=ramp(count=900))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(Decimator("dec", factor=3), "rsb0.prr0")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.run_for_cycles(2000)
    assert iom.received == [3 * v for v in range(300)]


def test_fork_join_kpn_on_six_slot_rsb():
    """The Figure 4 topology: split -> two branches -> merge."""
    params = SystemParameters(
        rsbs=[
            RsbParameters(
                name="rsb0",
                num_prrs=4,
                num_ioms=2,
                ki=2,
                ko=2,
                iom_positions=[0, 5],
            )
        ]
    )
    system = VapresSystem(params)
    src = Iom("src", source=ramp(count=400))
    dst = Iom("dst")
    system.attach_iom("rsb0.iom0", src)
    system.attach_iom("rsb0.iom1", dst)
    assembler = RuntimeAssembler(system)
    kpn = KahnProcessNetwork("forkjoin")
    kpn.add_iom("in")
    kpn.add_iom("out")
    kpn.add_module("split", lambda: StreamSplitter("split"), outputs=2)
    kpn.add_module("left", lambda: Scaler("left", gain=Q15_ONE))
    kpn.add_module("right", lambda: Scaler("right", gain=Q15_ONE))
    kpn.add_module("merge", lambda: StreamMerger("merge"), inputs=2)
    kpn.connect("in", "split")
    kpn.connect("split", "left", src_port=0)
    kpn.connect("split", "right", src_port=1)
    kpn.connect("left", "merge", dst_port=0)
    kpn.connect("right", "merge", dst_port=1)
    kpn.connect("merge", "out")
    placement = {
        "in": "rsb0.iom0",
        "out": "rsb0.iom1",
        "split": "rsb0.prr0",
        "left": "rsb0.prr1",
        "right": "rsb0.prr2",
        "merge": "rsb0.prr3",
    }
    assembler.assemble(kpn, placement)
    system.run_for_cycles(3000)
    assert sorted(dst.received) == list(range(400))


def test_bidirectional_streams_coexist():
    """Left- and right-flowing channels share the fabric independently."""
    params = SystemParameters(
        rsbs=[
            RsbParameters(
                name="rsb0", num_prrs=2, num_ioms=2, iom_positions=[0, 3]
            )
        ]
    )
    system = VapresSystem(params)
    left = Iom("left", source=ramp(count=300))
    right = Iom("right", source=ramp(count=300, start=1000))
    system.attach_iom("rsb0.iom0", left)
    system.attach_iom("rsb0.iom1", right)
    system.place_module_directly(Crc32("f0"), "rsb0.prr0")
    system.place_module_directly(Crc32("f1"), "rsb0.prr1")
    # rightward: iom0 -> prr0 -> iom1; leftward: iom1 -> prr1 -> iom0
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom1")
    system.open_stream("rsb0.iom1", "rsb0.prr1")
    system.open_stream("rsb0.prr1", "rsb0.iom0")
    system.run_for_cycles(1500)
    assert left.received == list(range(1000, 1300))
    assert right.received == list(range(300))
