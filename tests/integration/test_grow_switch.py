"""Integration test: switching a stream onto a multi-PRR spanning module.

Combines the two Section IV.A/III.B.3 mechanisms: a small filter is
replaced, without stream interruption, by a successor too large for any
single PRR -- the replacement is placed across two adjacent PRRs and the
9-step methodology hands the stream over to the spanning region's
primary interfaces.
"""

import pytest

from repro.analysis.metrics import max_gap_seconds
from repro.core import RsbParameters, SpanningRegion, SystemParameters, VapresSystem
from repro.core.switching import ModuleSwitcher
from repro.modules import Iom, MovingAverage
from repro.modules.base import staged
from repro.modules.sources import sine_wave


def test_switch_onto_spanning_region():
    params = SystemParameters(
        board="ML402",
        pr_speedup=500.0,
        rsbs=[
            RsbParameters(
                name="rsb0", num_prrs=3, num_ioms=1, iom_positions=[0]
            )
        ],
    )
    system = VapresSystem(params)
    iom = Iom("io", source=sine_wave(count=10_000_000))
    system.attach_iom("rsb0.iom0", iom)

    # small filter A runs in prr0
    system.place_module_directly(MovingAverage("small", window=4), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")

    # the big successor needs prr1+prr2 (a 16-word window "doesn't fit")
    span = SpanningRegion(system, ["rsb0.prr1", "rsb0.prr2"])
    span.register_module(
        "big", lambda: staged(MovingAverage("big", window=4))
    )
    system.repository.preload_to_sdram("big", span.name)

    system.run_for_us(20)
    report = system.microblaze.run_to_completion(
        ModuleSwitcher(system).switch(
            old_prr="rsb0.prr0",
            new_prr=span.name,
            new_module="big",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        ),
        "grow-switch",
    )
    system.run_for_us(40)

    assert report.words_lost == 0
    assert span.module is not None and span.module.name == "big"
    assert span.module.samples_out > 0
    # the spanning reconfiguration wrote both PRRs' frames (2x time)
    assert report.reconfig_seconds == pytest.approx(
        2 * 0.07194 / 500.0, rel=0.05
    )
    # and still: no stream interruption
    gap = max_gap_seconds(iom.receive_times)
    assert gap < report.reconfig_seconds / 10
    # state carried across (same register layout)
    assert len(report.state_words) == 6


def test_grow_switch_output_continuity():
    """Value-exactness across the grow-switch boundary."""
    from repro.modules.state import from_u32, to_u32

    count = 3000
    params = SystemParameters(
        board="ML402",
        pr_speedup=500.0,
        rsbs=[
            RsbParameters(
                name="rsb0", num_prrs=3, num_ioms=1, iom_positions=[0]
            )
        ],
    )
    system = VapresSystem(params)
    iom = Iom("io", source=sine_wave(count=count))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(MovingAverage("small", window=4), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    span = SpanningRegion(system, ["rsb0.prr1", "rsb0.prr2"])
    span.register_module("big", lambda: staged(MovingAverage("big", window=4)))
    system.repository.preload_to_sdram("big", span.name)
    system.run_for_us(10)
    system.microblaze.run_to_completion(
        ModuleSwitcher(system).switch(
            old_prr="rsb0.prr0",
            new_prr=span.name,
            new_module="big",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        ),
        "grow-switch",
    )
    system.run_for_us(80)
    reference = MovingAverage("ref", window=4)
    expected = [
        from_u32(to_u32(reference.process(to_u32(s))))
        for s in sine_wave(count=count)
    ]
    assert iom.received == expected[: len(iom.received)]
    assert len(iom.received) > 2000
