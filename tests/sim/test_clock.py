"""Unit tests for clocks and the Virtex-4 clocking primitives."""

import pytest

from repro.sim.clock import (
    Bufgmux,
    Bufr,
    Clock,
    ClockedComponent,
    Dcm,
    FixedSource,
    Pmcd,
)
from repro.sim.kernel import SimulationError, Simulator


class Counter(ClockedComponent):
    def __init__(self):
        self.samples = 0
        self.commits = 0

    def sample(self):
        self.samples += 1

    def commit(self):
        self.commits += 1


def test_clock_requires_exactly_one_frequency_spec():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Clock(sim)
    with pytest.raises(SimulationError):
        Clock(sim, source=FixedSource(1e6), freq_hz=1e6)


def test_clock_ticks_at_period():
    sim = Simulator()
    clk = Clock(sim, freq_hz=100e6)
    counter = Counter()
    clk.attach(counter)
    clk.start()
    sim.run_until(100_000)  # 10 us at 10 ns period -> 10 edges
    assert clk.cycles == 10
    assert counter.samples == 10
    assert counter.commits == 10


def test_sample_runs_before_commit_across_components():
    sim = Simulator()
    clk = Clock(sim, freq_hz=100e6)
    order = []

    class Probe(ClockedComponent):
        def __init__(self, tag):
            self.tag = tag

        def sample(self):
            order.append(("s", self.tag))

        def commit(self):
            order.append(("c", self.tag))

    clk.attach(Probe(0))
    clk.attach(Probe(1))
    clk.start()
    sim.run_until(clk.period_ps)
    assert order == [("s", 0), ("s", 1), ("c", 0), ("c", 1)]


def test_clock_gating_stops_and_resumes_edges():
    sim = Simulator()
    clk = Clock(sim, freq_hz=100e6)
    clk.start()
    sim.run_for(5 * clk.period_ps)
    assert clk.cycles == 5
    clk.set_enabled(False)
    sim.run_for(10 * clk.period_ps)
    assert clk.cycles == 5
    clk.set_enabled(True)
    sim.run_for(5 * clk.period_ps)
    assert clk.cycles == 10


def test_detach_stops_driving_component():
    sim = Simulator()
    clk = Clock(sim, freq_hz=100e6)
    counter = Counter()
    clk.attach(counter)
    clk.start()
    sim.run_for(3 * clk.period_ps)
    clk.detach(counter)
    sim.run_for(3 * clk.period_ps)
    assert counter.commits == 3


def test_start_is_idempotent():
    sim = Simulator()
    clk = Clock(sim, freq_hz=100e6)
    clk.start()
    clk.start()
    sim.run_for(2 * clk.period_ps)
    assert clk.cycles == 2


# ----------------------------------------------------------------------
# DCM / PMCD / BUFGMUX / BUFR
# ----------------------------------------------------------------------
def test_dcm_outputs():
    osc = FixedSource(100e6)
    dcm = Dcm(osc)
    assert dcm.clk0.frequency_hz == 100e6
    assert dcm.clk2x.frequency_hz == 200e6
    assert dcm.clkdv(4).frequency_hz == 25e6
    assert dcm.clkfx(3, 2).frequency_hz == 150e6


def test_dcm_range_checks():
    dcm = Dcm(FixedSource(100e6))
    with pytest.raises(SimulationError):
        dcm.clkdv(32)
    with pytest.raises(SimulationError):
        dcm.clkfx(1, 1)
    with pytest.raises(SimulationError):
        dcm.clkfx(4, 64)


def test_pmcd_phase_matched_dividers():
    pmcd = Pmcd(FixedSource(100e6))
    assert [s.frequency_hz for s in pmcd.outputs()] == [
        100e6,
        50e6,
        25e6,
        12.5e6,
    ]


def test_bufgmux_selects_between_sources():
    mux = Bufgmux(FixedSource(100e6), FixedSource(50e6))
    assert mux.frequency_hz == 100e6
    mux.select(1)
    assert mux.frequency_hz == 50e6
    with pytest.raises(SimulationError):
        mux.select(2)


def test_bufgmux_switch_takes_effect_on_next_edge():
    sim = Simulator()
    mux = Bufgmux(FixedSource(100e6), FixedSource(50e6))
    clk = Clock(sim, source=mux)
    clk.start()
    sim.run_for(10_000)  # one 100 MHz edge
    assert clk.cycles == 1
    mux.select(1)
    # next edge scheduled with the old 10ns period already; after that the
    # 20ns period applies
    sim.run_for(10_000)
    assert clk.cycles == 2
    sim.run_for(20_000)
    assert clk.cycles == 3


def test_bufr_divide_and_gate():
    sim = Simulator()
    bufr = Bufr(FixedSource(100e6), divide=2)
    clk = Clock(sim, source=bufr)
    assert clk.frequency_hz == 50e6
    clk.start()
    sim.run_for(100_000)
    assert clk.cycles == 5
    bufr.set_enabled(False)
    sim.run_for(100_000)
    assert clk.cycles == 5
    bufr.set_enabled(True)
    sim.run_for(100_000)
    assert clk.cycles == 10


def test_bufr_divide_range():
    with pytest.raises(SimulationError):
        Bufr(FixedSource(1e6), divide=9)


def test_bufr_gates_all_downstream_clocks():
    sim = Simulator()
    bufr = Bufr(FixedSource(100e6))
    clk_a = Clock(sim, source=bufr, name="a")
    clk_b = Clock(sim, source=bufr, name="b")
    clk_a.start()
    clk_b.start()
    bufr.set_enabled(False)
    sim.run_for(50_000)
    assert clk_a.cycles == 0
    assert clk_b.cycles == 0


def test_full_lcd_chain_dcm_pmcd_bufgmux_bufr():
    """The paper's LCD derivation: DCM -> PMCD -> BUFGMUX -> BUFR."""
    sim = Simulator()
    osc = FixedSource(100e6)
    dcm = Dcm(osc)
    pmcd = Pmcd(dcm.clk0)
    mux = Bufgmux(pmcd.clka1, pmcd.clkdiv2)
    bufr = Bufr(mux)
    clk = Clock(sim, source=bufr, name="prr.lcd")
    clk.start()
    sim.run_for(200_000)  # 20 100MHz periods
    assert clk.cycles == 20
    mux.select(1)  # halve the PRR frequency at runtime (CLK_sel)
    sim.run_for(200_000)
    assert 29 <= clk.cycles <= 31  # ~10 more edges at 50 MHz
