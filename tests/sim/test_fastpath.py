"""Unit tests for the compiled-schedule fast path.

The contract under test: with the fast path enabled, every observable of
the simulation -- callback order, clock cycle counts, ``now``,
``events_processed`` and the global sequence counter -- is bit-identical
to the event-heap kernel.  Differential twins (one heap, one fast) run
the same scenario and their full logs are compared.
"""

import os
import subprocess
import sys

from repro.sim.clock import Bufgmux, Clock, ClockedComponent, FixedSource
from repro.sim.kernel import Simulator


class Recorder(ClockedComponent):
    """Appends every sample/commit call to a shared log."""

    def __init__(self, log, sim, name):
        self.log = log
        self.sim = sim
        self.name = name

    def sample(self):
        self.log.append((self.sim.now, "s", self.name))

    def commit(self):
        self.log.append((self.sim.now, "c", self.name))


def build_twin(freqs, fastpath):
    """One sim with a recorder-carrying clock per frequency."""
    sim = Simulator(use_fastpath=fastpath)
    log = []
    clocks = []
    for i, freq in enumerate(freqs):
        clk = Clock(sim, freq_hz=freq, name=f"clk{i}")
        clk.attach(Recorder(log, sim, f"clk{i}"))
        clk.start()
        clocks.append(clk)
    return sim, clocks, log


def drawn_seq(sim):
    """How many sequence numbers the sim has handed out so far."""
    return sim.schedule(0, lambda: None).seq


def assert_equivalent(freqs, horizon_ps, mutate=None):
    sim_h, clocks_h, log_h = build_twin(freqs, fastpath=False)
    sim_f, clocks_f, log_f = build_twin(freqs, fastpath=True)
    assert sim_f.fastpath_enabled and not sim_h.fastpath_enabled
    if mutate:
        mutate(sim_h, clocks_h)
        mutate(sim_f, clocks_f)
    sim_h.run_until(horizon_ps)
    sim_f.run_until(horizon_ps)
    assert log_f == log_h
    assert sim_f.now == sim_h.now
    assert sim_f.events_processed == sim_h.events_processed
    assert [c.cycles for c in clocks_f] == [c.cycles for c in clocks_h]
    assert drawn_seq(sim_f) == drawn_seq(sim_h)


def test_single_clock_equivalence():
    assert_equivalent([100e6], 500_000)


def test_harmonic_clocks_equivalence():
    assert_equivalent([100e6, 50e6, 25e6], 500_000)


def test_coprime_periods_fall_back_to_scan_mode():
    # 100 MHz (10_000 ps) and 33 MHz (30_303 ps): the hyperperiod table
    # would blow past MAX_TABLE_EDGES, forcing the per-instant scan mode
    assert_equivalent([100e6, 33e6], 400_000)


def test_normal_event_limits_the_window():
    def mutate(sim, clocks):
        hits = []
        sim.schedule(123_456, lambda: hits.append(sim.now))

    assert_equivalent([100e6, 50e6], 300_000, mutate)


def test_event_scheduled_from_sample_bails_identically():
    class Scheduler(ClockedComponent):
        def __init__(self, sim, log):
            self.sim = sim
            self.log = log

        def sample(self):
            if self.sim.now == 60_000:
                self.sim.schedule(5_000, lambda: self.log.append("fired"))

        def commit(self):
            pass

    def mutate(sim, clocks):
        clocks[0].attach(Scheduler(sim, []))

    assert_equivalent([100e6, 50e6], 300_000, mutate)


def test_midwindow_gating_equivalence():
    def mutate(sim, clocks):
        sim.schedule(95_000, lambda: clocks[1].set_enabled(False))
        sim.schedule(205_000, lambda: clocks[1].set_enabled(True))

    assert_equivalent([100e6, 50e6], 400_000, mutate)


def test_gating_from_commit_callback_equivalence():
    class Gater(ClockedComponent):
        def __init__(self, sim, victim):
            self.sim = sim
            self.victim = victim

        def sample(self):
            pass

        def commit(self):
            if self.sim.now == 100_000:
                self.victim.set_enabled(False)
            elif self.sim.now == 200_000:
                self.victim.set_enabled(True)

    def mutate(sim, clocks):
        clocks[0].attach(Gater(sim, clocks[1]))

    assert_equivalent([100e6, 50e6], 400_000, mutate)


def test_bufgmux_retune_midrun_equivalence():
    def build(fastpath):
        sim = Simulator(use_fastpath=fastpath)
        mux = Bufgmux(FixedSource(100e6), FixedSource(40e6))
        clk = Clock(sim, source=mux, name="lcd")
        fixed = Clock(sim, freq_hz=100e6, name="sys")
        log = []
        clk.attach(Recorder(log, sim, "lcd"))
        fixed.attach(Recorder(log, sim, "sys"))
        clk.start()
        fixed.start()
        sim.schedule(150_000, lambda: mux.select(1))
        sim.schedule(330_000, lambda: mux.select(0))
        return sim, (clk, fixed), log

    sim_h, clocks_h, log_h = build(False)
    sim_f, clocks_f, log_f = build(True)
    sim_h.run_until(500_000)
    sim_f.run_until(500_000)
    assert log_f == log_h
    assert sim_f.events_processed == sim_h.events_processed
    assert [c.cycles for c in clocks_f] == [c.cycles for c in clocks_h]
    assert drawn_seq(sim_f) == drawn_seq(sim_h)


def test_retune_from_commit_callback_equivalence():
    """CLOCK_EPOCH bump from inside a dispatch instant forces a re-read."""

    class Retuner(ClockedComponent):
        def __init__(self, sim, mux):
            self.sim = sim
            self.mux = mux

        def sample(self):
            pass

        def commit(self):
            if self.sim.now == 100_000:
                self.mux.select(1)

    def build(fastpath):
        sim = Simulator(use_fastpath=fastpath)
        mux = Bufgmux(FixedSource(100e6), FixedSource(50e6))
        clk = Clock(sim, source=mux, name="lcd")
        sysclk = Clock(sim, freq_hz=100e6, name="sys")
        log = []
        clk.attach(Recorder(log, sim, "lcd"))
        sysclk.attach(Recorder(log, sim, "sys"))
        sysclk.attach(Retuner(sim, mux))
        clk.start()
        sysclk.start()
        return sim, (clk, sysclk), log

    sim_h, clocks_h, log_h = build(False)
    sim_f, clocks_f, log_f = build(True)
    sim_h.run_until(400_000)
    sim_f.run_until(400_000)
    assert log_f == log_h
    assert sim_f.events_processed == sim_h.events_processed
    assert [c.cycles for c in clocks_f] == [c.cycles for c in clocks_h]


def test_phase_probe_suppresses_fastpath():
    calls = []

    class Probe:
        def begin(self, component, phase, now):
            calls.append((phase, now))

        def end(self):
            pass

    sim, clocks, log = build_twin([100e6], fastpath=True)
    sim.phase_probe = Probe()
    sim.run_until(100_000)
    assert calls  # the probe saw phases: the heap path ran them
    assert sim.fastpath_stats["edges"] == 0


def test_fast_forward_stops_before_normal_event():
    sim, clocks, log = build_twin([100e6], fastpath=True)
    fired = []
    sim.schedule(55_000, lambda: fired.append(sim.now))
    assert sim.fast_forward()
    assert not fired  # the normal event is for the caller's step() loop
    assert clocks[0].cycles == 5
    assert sim.now <= 55_000


def test_fast_forward_disabled_returns_false():
    sim, clocks, log = build_twin([100e6], fastpath=False)
    assert sim.fast_forward() is False


def test_stats_and_runtime_toggle():
    sim, clocks, log = build_twin([100e6], fastpath=True)
    sim.run_until(200_000)
    stats = sim.fastpath_stats
    assert stats["windows"] >= 1
    assert stats["edges"] == 20
    assert stats["bails"] == 0
    sim.set_fastpath(False)
    assert not sim.fastpath_enabled
    assert sim.fastpath_stats == {"windows": 0, "edges": 0, "bails": 0}
    before = sim.events_processed
    sim.run_until(300_000)
    assert sim.events_processed == before + 20  # heap path still correct
    sim.set_fastpath(True)
    assert sim.fastpath_enabled
    sim.run_until(400_000)
    assert clocks[0].cycles == 40


def test_env_var_disables_fastpath():
    code = (
        "from repro.sim.kernel import Simulator;"
        "print(Simulator().fastpath_enabled)"
    )
    env = dict(os.environ, REPRO_FASTPATH="0")
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert out.stdout.strip() == "False"


def test_events_processed_accounting_matches_heap_exactly():
    sim_f, clocks_f, _ = build_twin([100e6, 50e6], fastpath=True)
    sim_h, clocks_h, _ = build_twin([100e6, 50e6], fastpath=False)
    for horizon in range(50_000, 500_001, 50_000):
        sim_f.run_until(horizon)
        sim_h.run_until(horizon)
        assert sim_f.events_processed == sim_h.events_processed
