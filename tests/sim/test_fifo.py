"""Unit tests for the FIFO primitives."""

import pytest

from repro.sim.fifo import AsyncFifo, FifoError, SyncFifo


def test_capacity_must_be_positive():
    with pytest.raises(FifoError):
        SyncFifo(0)
    with pytest.raises(FifoError):
        SyncFifo(-3)


def test_fifo_ordering():
    fifo = SyncFifo(8)
    for value in range(5):
        assert fifo.push(value)
    assert [fifo.pop() for _ in range(5)] == [0, 1, 2, 3, 4]


def test_empty_and_full_flags():
    fifo = SyncFifo(2)
    assert fifo.empty and not fifo.full
    fifo.push(1)
    assert not fifo.empty and not fifo.full
    fifo.push(2)
    assert fifo.full
    fifo.pop()
    assert not fifo.full


def test_push_while_full_drops_and_counts():
    fifo = SyncFifo(1)
    assert fifo.push(1)
    assert not fifo.push(2)
    assert fifo.drops == 1
    assert fifo.pop() == 1


def test_pop_empty_raises():
    with pytest.raises(FifoError):
        SyncFifo(4).pop()


def test_peek_does_not_consume():
    fifo = SyncFifo(4)
    fifo.push(42)
    assert fifo.peek() == 42
    assert len(fifo) == 1
    with pytest.raises(FifoError):
        SyncFifo(4).peek()


def test_almost_full_threshold():
    fifo = SyncFifo(10, almost_full_slack=4)
    for value in range(5):
        fifo.push(value)
    assert not fifo.almost_full  # remaining = 5 > 4
    fifo.push(5)
    assert fifo.almost_full  # remaining = 4
    fifo.pop()
    assert not fifo.almost_full


def test_almost_full_slack_zero_means_full():
    fifo = SyncFifo(2)
    fifo.push(1)
    assert not fifo.almost_full
    fifo.push(2)
    assert fifo.almost_full


def test_negative_slack_rejected():
    with pytest.raises(FifoError):
        SyncFifo(4, almost_full_slack=-1)


def test_clear_resets_contents_not_counters():
    fifo = SyncFifo(4)
    fifo.push(1)
    fifo.push(2)
    fifo.clear()
    assert fifo.empty
    assert fifo.pushes == 2


def test_drain_returns_in_order():
    fifo = SyncFifo(8)
    for value in (3, 1, 4):
        fifo.push(value)
    assert fifo.drain() == [3, 1, 4]
    assert fifo.empty


def test_max_occupancy_statistic():
    fifo = SyncFifo(8)
    for value in range(5):
        fifo.push(value)
    fifo.pop()
    fifo.pop()
    assert fifo.max_occupancy == 5


# ----------------------------------------------------------------------
# AsyncFifo: flag synchroniser behaviour
# ----------------------------------------------------------------------
def test_async_fifo_data_path_matches_sync():
    fifo = AsyncFifo(4)
    fifo.push(1)
    fifo.push(2)
    assert fifo.pop() == 1
    assert fifo.pop() == 2


def test_sync_empty_shows_latency():
    fifo = AsyncFifo(4, sync_stages=2)
    fifo.push(7)
    # the write is not yet visible through the 2-stage synchroniser
    assert fifo.sync_empty
    fifo.reader_tick()
    assert fifo.sync_empty
    fifo.reader_tick()
    assert not fifo.sync_empty


def test_sync_empty_true_when_actually_empty():
    fifo = AsyncFifo(4)
    for _ in range(5):
        fifo.reader_tick()
    assert fifo.sync_empty


def test_sync_visibility_cleared_on_clear():
    fifo = AsyncFifo(4, sync_stages=1)
    fifo.push(1)
    fifo.reader_tick()
    fifo.clear()
    assert fifo.sync_empty
    assert fifo.empty


def test_async_fifo_records_domains():
    fifo = AsyncFifo(4, write_domain="lcd0", read_domain="static")
    assert fifo.write_domain == "lcd0"
    assert fifo.read_domain == "static"
