"""Unit tests for the simulation kernel."""

import pytest

from repro.sim.kernel import (
    PRIORITY_COMMIT,
    PRIORITY_NORMAL,
    PRIORITY_SAMPLE,
    SimulationError,
    Simulator,
    freq_hz_to_period_ps,
    seconds_to_ps,
)


def test_time_starts_at_zero():
    assert Simulator().now == 0


def test_schedule_and_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda: fired.append(sim.now))
    sim.schedule(200, lambda: fired.append(sim.now))
    sim.run_until(150)
    assert fired == [100]
    assert sim.now == 150
    sim.run_until(300)
    assert fired == [100, 200]


def test_events_fire_in_time_order_regardless_of_insert_order():
    sim = Simulator()
    fired = []
    sim.schedule(300, lambda: fired.append(3))
    sim.schedule(100, lambda: fired.append(1))
    sim.schedule(200, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2, 3]


def test_priority_orders_events_at_same_timestamp():
    sim = Simulator()
    fired = []
    sim.schedule(50, lambda: fired.append("normal"), priority=PRIORITY_NORMAL)
    sim.schedule(50, lambda: fired.append("commit"), priority=PRIORITY_COMMIT)
    sim.schedule(50, lambda: fired.append("sample"), priority=PRIORITY_SAMPLE)
    sim.run()
    assert fired == ["sample", "commit", "normal"]


def test_fifo_order_within_same_time_and_priority():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(10, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run_until(10)


def test_callback_may_schedule_followups():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(sim.now)
        if depth:
            sim.schedule(10, lambda: chain(depth - 1))

    sim.schedule(10, lambda: chain(3))
    sim.run()
    assert fired == [10, 20, 30, 40]


def test_run_max_events_limit():
    sim = Simulator()
    for _ in range(10):
        sim.schedule(1, lambda: None)
    count = sim.run(max_events=4)
    assert count == 4
    assert sim.pending_events == 6


def test_run_for_advances_relative_time():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run_for(60)
    assert sim.now == 60
    sim.run_for(60)
    assert sim.now == 120


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_trace_log_records_time_and_fields():
    sim = Simulator()
    sim.schedule(123, lambda: sim.log("cat", "hello", value=7))
    sim.run()
    assert len(sim.trace) == 1
    event = sim.trace[0]
    assert event.time == 123
    assert event.category == "cat"
    assert event.fields == {"value": 7}
    assert "hello" in str(event)


def test_trace_by_category_filters():
    sim = Simulator()
    sim.log("a", "one")
    sim.log("b", "two")
    sim.log("a", "three")
    assert len(sim.trace_by_category("a")) == 2


def test_tracing_can_be_disabled():
    sim = Simulator()
    sim.set_tracing(False)
    sim.log("a", "ignored")
    assert sim.trace == []


def test_seconds_to_ps_roundtrip():
    assert seconds_to_ps(1.0) == 10**12
    assert seconds_to_ps(0.07194) == 71_940_000_000


def test_freq_to_period():
    assert freq_hz_to_period_ps(100e6) == 10_000
    assert freq_hz_to_period_ps(50e6) == 20_000
    with pytest.raises(SimulationError):
        freq_hz_to_period_ps(0)


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(3):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_processed == 3
