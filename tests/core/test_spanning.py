"""Unit tests for multi-PRR spanning placements (paper Section IV.A)."""

import pytest

from repro.core import RsbParameters, SystemParameters, VapresSystem
from repro.core.spanning import SpanningError, SpanningRegion
from repro.modules import Iom, StreamMerger
from repro.modules.sources import ramp
from repro.modules.transforms import PassThrough



def build_wide_system(num_prrs=3, pr_speedup=1000.0):

    params = SystemParameters(
        board="ML402",  # LX60: room for more PRRs
        pr_speedup=pr_speedup,
        rsbs=[
            RsbParameters(
                name="rsb0",
                num_prrs=num_prrs,
                num_ioms=1,
                iom_positions=[0],
            )
        ],
    )
    return VapresSystem(params)


def test_span_requires_two_prrs():
    system = build_wide_system()
    with pytest.raises(SpanningError, match="at least two"):
        SpanningRegion(system, ["rsb0.prr0"])


def test_span_requires_adjacent_attachments():
    system = build_wide_system()
    with pytest.raises(SpanningError, match="adjacent"):
        SpanningRegion(system, ["rsb0.prr0", "rsb0.prr2"])


def test_span_combined_resources_and_ports():
    system = build_wide_system()
    span = SpanningRegion(system, ["rsb0.prr0", "rsb0.prr1"])
    assert span.slices == 1280  # two 640-slice PRRs
    ports = span.ports()
    assert len(ports.consumers) == 2
    assert len(ports.producers) == 2
    assert ports.fsl_in is system.prr("rsb0.prr0").fsl_to_module
    assert span.positions() == [1, 2]


def test_span_clock_region_limit():
    """Four stacked single-region PRRs exceed the 3-region BUFR reach."""
    system = build_wide_system(num_prrs=4)
    with pytest.raises(SpanningError, match="BUFR"):
        SpanningRegion(
            system,
            ["rsb0.prr0", "rsb0.prr1", "rsb0.prr2", "rsb0.prr3"],
        )


def test_span_load_marks_all_slots_occupied():
    system = build_wide_system()
    span = SpanningRegion(system, ["rsb0.prr0", "rsb0.prr1"])
    module = PassThrough("big")
    span.load(module)
    assert system.prr("rsb0.prr0").occupied
    assert system.prr("rsb0.prr1").occupied
    assert span.occupied
    removed = span.unload()
    assert removed is module
    assert not system.prr("rsb0.prr0").occupied


def test_span_load_conflicts_with_resident_module():
    system = build_wide_system()
    system.place_module_directly(PassThrough("squatter"), "rsb0.prr1")
    span = SpanningRegion(system, ["rsb0.prr0", "rsb0.prr1"])
    with pytest.raises(SpanningError, match="already holds"):
        span.load(PassThrough("big"))


def test_span_module_clocked_by_primary_lcd():
    system = build_wide_system()
    span = SpanningRegion(system, ["rsb0.prr0", "rsb0.prr1"])
    module = PassThrough("big")
    span.load(module)
    system.start()
    consumer = span.ports().consumers[0]
    consumer.fifo_wen = True
    consumer.receive(True, 7)
    system.run_for_cycles(10)
    assert module.samples_in == 1


def test_span_bitstream_covers_both_rects():
    system = build_wide_system()
    span = SpanningRegion(system, ["rsb0.prr0", "rsb0.prr1"])
    span.register_module("big", lambda: PassThrough("big"))
    bitstream = system.repository.lookup("big", span.name)
    single = system.repository  # compare against one-PRR bitstream size
    from repro.pr.bitstream import bitstream_for_rect

    one = bitstream_for_rect(
        "x", "y", system.floorplan.prrs["rsb0.prr0"].rect
    )
    assert bitstream.frames == 2 * one.frames
    assert bitstream.size_bytes > 1.9 * one.size_bytes


def test_span_timed_reconfiguration_isolates_and_loads():
    system = build_wide_system()
    span = SpanningRegion(system, ["rsb0.prr1", "rsb0.prr2"])
    span.register_module("big", lambda: PassThrough("big"))
    system.repository.preload_to_sdram("big", span.name)
    system.start()
    transfer = system.engine.array2icap("big", span.name)
    # both slots isolated during the write
    assert span.reconfiguring
    assert not system.prr("rsb0.prr1").slice_macros[0].enabled
    assert not system.prr("rsb0.prr2").bufr.enabled
    system.run_for_ms(0.5)
    assert not span.reconfiguring
    assert span.module.name == "big"
    assert system.prr("rsb0.prr1").module is span.module
    # one LCD: the primary BUFR runs, the secondary stays gated
    assert system.prr("rsb0.prr1").bufr.enabled
    assert not system.prr("rsb0.prr2").bufr.enabled
    # reconfiguration took ~2x the single-PRR time (area-linear)
    single_seconds = 0.07194 / 1000.0  # scaled
    assert transfer.duration_seconds == pytest.approx(
        2 * single_seconds, rel=0.05
    )


def test_span_streams_through_both_switchboxes():
    """A spanning module's combined ports live on distinct switch boxes:
    input arrives at the second spanned box (prr2), output leaves from the
    first (prr1)."""
    system = build_wide_system()
    iom = Iom("io", source=ramp(count=100))
    system.attach_iom("rsb0.iom0", iom)
    span = SpanningRegion(system, ["rsb0.prr1", "rsb0.prr2"])
    merger = StreamMerger("wide-merge")  # scans all consumers; 1 active
    span.load(merger)
    # iom -> prr2 consumer = the span's combined consumer index 1
    system.open_stream("rsb0.iom0", "rsb0.prr2")
    # merger emits on combined producer 0 = prr1's producer -> iom
    system.open_stream("rsb0.prr1", "rsb0.iom0")
    system.run_for_cycles(600)
    assert iom.received == list(range(100))
    assert merger.samples_in == 100


def test_spanned_slots_reject_individual_load_and_unload():
    """Loading/unloading a member PRR of a live span is a protocol error
    (it would detach from the wrong clock and corrupt occupancy)."""
    from repro.core.rsb import RsbError

    system = build_wide_system()
    span = SpanningRegion(system, ["rsb0.prr0", "rsb0.prr1"])
    span.load(PassThrough("big"))
    with pytest.raises(RsbError, match="spanning region"):
        system.place_module_directly(PassThrough("intruder"), "rsb0.prr1")
    with pytest.raises(RsbError, match="spanning region"):
        system.prr("rsb0.prr0").unload()
    # dissolving the span restores individual control
    span.unload()
    system.place_module_directly(PassThrough("fine"), "rsb0.prr1")
    assert system.prr("rsb0.prr1").module.name == "fine"


def test_spanning_region_lookup():
    system = build_wide_system()
    span = SpanningRegion(system, ["rsb0.prr0", "rsb0.prr1"])
    assert system.spanning_region(span.name) is span
    import pytest as _pytest

    with _pytest.raises(Exception, match="unknown spanning region"):
        system.spanning_region("nope")
