"""Unit tests for VapresSystem assembly and reconfiguration protocol."""

import pytest

from repro.core.params import RsbParameters, SystemParameters
from repro.core.rsb import IomSlot, PrrSlot
from repro.core.system import SystemError_, VapresSystem
from repro.modules.iom import Iom
from repro.modules.transforms import PassThrough

from tests.helpers import build_system


def test_default_system_is_prototype():
    system = VapresSystem()
    assert system.device.name == "XC4VLX25"
    assert len(system.prr_slots) == 2
    assert len(system.iom_slots) == 1


def test_slot_lookup_and_kinds():
    system = build_system()
    assert isinstance(system.prr("rsb0.prr0"), PrrSlot)
    assert isinstance(system.iom_slot("rsb0.iom0"), IomSlot)
    with pytest.raises(SystemError_):
        system.slot("nope")
    with pytest.raises(SystemError_):
        system.prr("rsb0.iom0")
    with pytest.raises(SystemError_):
        system.iom_slot("rsb0.prr0")


def test_module_ids_are_dense_and_resolvable():
    system = build_system()
    ids = sorted(slot.module_id for slot in system.rsbs[0].slots)
    assert ids == [0, 1, 2]
    for module_id in ids:
        assert system.slot_by_id(module_id).module_id == module_id
    with pytest.raises(SystemError_):
        system.slot_by_id(99)


def test_floorplan_covers_all_prrs():
    system = build_system()
    for slot in system.prr_slots:
        assert slot.name in system.floorplan.prrs
        assert system.floorplan.prrs[slot.name].slices >= 640


def test_register_module_creates_bitstreams_for_all_prrs():
    system = build_system()
    system.register_module("mod", lambda: PassThrough("mod"))
    assert system.repository.has("mod", "rsb0.prr0")
    assert system.repository.has("mod", "rsb0.prr1")


def test_register_module_specific_prr():
    system = build_system()
    system.register_module(
        "mod", lambda: PassThrough("mod"), prr_names=["rsb0.prr1"]
    )
    assert not system.repository.has("mod", "rsb0.prr0")
    assert system.repository.has("mod", "rsb0.prr1")


def test_reconfiguration_isolation_protocol():
    """SM_en off + clock gated during PR; module loaded after (Section III)."""
    system = build_system()
    system.register_module("mod", lambda: PassThrough("mod"))
    system.repository.preload_to_sdram("mod", "rsb0.prr0")
    system.start()
    slot = system.prr("rsb0.prr0")
    system.engine.array2icap("mod", "rsb0.prr0")
    assert slot.reconfiguring
    assert not slot.slice_macros[0].enabled
    assert not slot.bufr.enabled
    assert slot.module is None
    # run past the (scaled) reconfiguration time
    system.run_for_ms(0.2)
    assert not slot.reconfiguring
    assert slot.module is not None
    assert slot.module.name == "mod"
    assert slot.slice_macros[0].enabled
    assert slot.bufr.enabled


def test_reconfig_evicts_previous_module():
    system = build_system()
    old = PassThrough("old")
    system.place_module_directly(old, "rsb0.prr0")
    system.register_module("new", lambda: PassThrough("new"))
    system.repository.preload_to_sdram("new", "rsb0.prr0")
    system.start()
    system.engine.array2icap("new", "rsb0.prr0")
    system.run_for_ms(0.2)
    assert system.prr("rsb0.prr0").module.name == "new"


def test_open_and_close_stream():
    system = build_system()
    iom = Iom("io", source=iter(range(10)))
    system.attach_iom("rsb0.iom0", iom)
    module = PassThrough("m")
    system.place_module_directly(module, "rsb0.prr0")
    ch = system.open_stream("rsb0.iom0", "rsb0.prr0")
    assert ch.d == 2
    system.run_for_cycles(50)
    assert module.samples_in == 10
    lost = system.close_stream(ch)
    assert lost == 0


def test_close_foreign_channel_rejected():
    system_a = build_system()
    system_b = build_system()
    system_a.place_module_directly(PassThrough("m"), "rsb0.prr0")
    channel = system_a.open_stream("rsb0.iom0", "rsb0.prr0")
    with pytest.raises(SystemError_):
        system_b.close_stream(channel)


def test_cross_rsb_stream_rejected():
    params = SystemParameters(
        rsbs=[
            RsbParameters(name="a", num_prrs=1, num_ioms=1, iom_positions=[0]),
            RsbParameters(name="b", num_prrs=1, num_ioms=1, iom_positions=[0]),
        ]
    )
    system = VapresSystem(params)
    with pytest.raises(SystemError_, match="cross RSBs"):
        system.open_stream("a.prr0", "b.prr0")


def test_run_helpers_advance_time():
    system = build_system()
    system.run_for_cycles(100)
    assert system.sim.now == 100 * system.system_clock.period_ps
    system.run_for_us(1)
    assert system.sim.now == 100 * system.system_clock.period_ps + 1_000_000


def test_pr_speedup_scales_rates():
    slow = VapresSystem(SystemParameters.prototype())
    fast = build_system(pr_speedup=100.0)
    assert fast.cf.bytes_per_second == pytest.approx(
        100 * slow.cf.bytes_per_second
    )
    assert fast.sdram.icap_path_bytes_per_second == pytest.approx(
        100 * slow.sdram.icap_path_bytes_per_second
    )


def test_multi_rsb_system():
    params = SystemParameters(
        rsbs=[
            RsbParameters(name="a", num_prrs=2, num_ioms=1, iom_positions=[0]),
            RsbParameters(name="b", num_prrs=1, num_ioms=1, iom_positions=[0]),
        ]
    )
    system = VapresSystem(params)
    assert len(system.prr_slots) == 3
    # DCR bases do not collide
    addresses = sorted(system.dcr_bus.mapped_addresses)
    assert len(addresses) == len(set(addresses)) == 5
