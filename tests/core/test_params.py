"""Unit tests for architectural parameters."""

import pytest

from repro.core.params import ParameterError, RsbParameters, SystemParameters


def test_prototype_matches_paper_section_va():
    params = SystemParameters.prototype()
    assert params.board == "ML401"
    assert params.system_clock_hz == 100e6
    rsb = params.rsbs[0]
    assert rsb.num_prrs == 2
    assert rsb.num_ioms == 1
    assert rsb.channel_width == 32
    assert (rsb.kr, rsb.kl, rsb.ki, rsb.ko) == (2, 2, 1, 1)
    assert rsb.fifo_depth == 512
    assert rsb.prr_slices == 640


def test_figure7_parameters():
    params = SystemParameters.figure7()
    rsb = params.rsbs[0]
    assert rsb.num_prrs == 4
    assert rsb.attachment_count == 6
    assert (rsb.kr, rsb.kl, rsb.ki, rsb.ko) == (2, 2, 1, 1)


def test_attachment_count():
    rsb = RsbParameters(num_prrs=3, num_ioms=2)
    assert rsb.attachment_count == 5


def test_default_iom_positions_leftmost():
    rsb = RsbParameters(num_prrs=2, num_ioms=2)
    assert rsb.resolved_iom_positions() == [0, 1]
    assert rsb.prr_positions() == [2, 3]


def test_explicit_iom_positions():
    rsb = RsbParameters(num_prrs=2, num_ioms=2, iom_positions=[0, 3])
    assert rsb.prr_positions() == [1, 2]


def test_validation_errors():
    with pytest.raises(ParameterError):
        RsbParameters(num_prrs=0)
    with pytest.raises(ParameterError):
        RsbParameters(channel_width=0)
    with pytest.raises(ParameterError):
        RsbParameters(ki=0)
    with pytest.raises(ParameterError):
        RsbParameters(fifo_depth=2)
    with pytest.raises(ParameterError):
        RsbParameters(regions_per_prr=4)
    with pytest.raises(ParameterError):
        RsbParameters(num_prrs=2, num_ioms=1, iom_positions=[0, 1])
    with pytest.raises(ParameterError):
        RsbParameters(num_prrs=2, num_ioms=1, iom_positions=[9])
    with pytest.raises(ParameterError):
        RsbParameters(num_prrs=2, num_ioms=2, iom_positions=[1, 1])
    with pytest.raises(ParameterError):
        RsbParameters(num_prrs=2, num_ioms=1, kr=0)


def test_single_prr_rsb_may_omit_lanes():
    rsb = RsbParameters(num_prrs=1, num_ioms=0, kr=0, kl=0)
    assert rsb.attachment_count == 1


def test_system_validation():
    with pytest.raises(ParameterError):
        SystemParameters(system_clock_hz=0)
    with pytest.raises(ParameterError):
        SystemParameters(rsbs=[])
    with pytest.raises(ParameterError):
        SystemParameters(lcd_divisors=(0, 2))
    with pytest.raises(ParameterError):
        SystemParameters(pr_speedup=0)
    with pytest.raises(ParameterError):
        SystemParameters(
            rsbs=[RsbParameters(name="x"), RsbParameters(name="x")]
        )


def test_with_rsb_override():
    params = SystemParameters.prototype().with_rsb(
        num_prrs=4, num_ioms=2, iom_positions=[0, 5]
    )
    assert params.rsbs[0].num_prrs == 4
    assert params.rsbs[0].channel_width == 32  # untouched fields preserved


def test_with_rsb_requires_single_rsb():
    params = SystemParameters(
        rsbs=[RsbParameters(name="a"), RsbParameters(name="b")]
    )
    with pytest.raises(ParameterError):
        params.with_rsb(num_prrs=3)


def test_total_prrs():
    params = SystemParameters(
        rsbs=[
            RsbParameters(name="a", num_prrs=2),
            RsbParameters(name="b", num_prrs=3),
        ]
    )
    assert params.total_prrs == 5
