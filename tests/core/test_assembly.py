"""Unit tests for runtime assembly of KPNs onto an RSB."""

import pytest

from repro.core.assembly import AssemblyError, RuntimeAssembler
from repro.core.kpn import KahnProcessNetwork
from repro.modules.filters import q15
from repro.modules.iom import Iom
from repro.modules.sources import ramp
from repro.modules.transforms import PassThrough, Scaler

from tests.helpers import build_system


def pipeline_kpn(stages=2):
    kpn = KahnProcessNetwork("pipe")
    kpn.add_iom("io")
    previous = "io"
    for index in range(stages):
        name = f"stage{index}"
        kpn.add_module(name, lambda n=name: PassThrough(n))
        kpn.connect(previous, name)
        previous = name
    kpn.connect(previous, "io")
    return kpn


def test_auto_placement_assigns_all_nodes():
    system = build_system()
    assembler = RuntimeAssembler(system)
    kpn = pipeline_kpn(2)
    placement = assembler.auto_placement(kpn)
    assert placement["io"] == "rsb0.iom0"
    assert placement["stage0"] == "rsb0.prr0"
    assert placement["stage1"] == "rsb0.prr1"


def test_auto_placement_rejects_oversubscription():
    system = build_system()
    assembler = RuntimeAssembler(system)
    with pytest.raises(AssemblyError, match="free PRRs"):
        assembler.auto_placement(pipeline_kpn(3))


def test_check_placement_slot_kind_mismatch():
    system = build_system()
    assembler = RuntimeAssembler(system)
    kpn = pipeline_kpn(1)
    with pytest.raises(AssemblyError, match="wrong slot kind"):
        assembler.check_placement(
            kpn, {"io": "rsb0.prr1", "stage0": "rsb0.prr0"}
        )


def test_check_placement_shared_slot():
    system = build_system()
    assembler = RuntimeAssembler(system)
    kpn = pipeline_kpn(2)
    with pytest.raises(AssemblyError, match="share"):
        assembler.check_placement(
            kpn,
            {
                "io": "rsb0.iom0",
                "stage0": "rsb0.prr0",
                "stage1": "rsb0.prr0",
            },
        )


def test_check_placement_missing_node():
    system = build_system()
    assembler = RuntimeAssembler(system)
    with pytest.raises(AssemblyError, match="no placement"):
        assembler.check_placement(pipeline_kpn(1), {"io": "rsb0.iom0"})


def test_check_placement_port_counts():
    system = build_system()  # ki=ko=1
    assembler = RuntimeAssembler(system)
    kpn = KahnProcessNetwork()
    kpn.add_iom("io")
    kpn.add_module("wide", lambda: PassThrough("w"), inputs=2)
    kpn.connect("io", "wide")
    with pytest.raises(AssemblyError, match="ports"):
        assembler.check_placement(
            kpn, {"io": "rsb0.iom0", "wide": "rsb0.prr0"}
        )


def test_assemble_runs_data_through_pipeline():
    system = build_system()
    iom = Iom("io", source=ramp(count=50))
    system.attach_iom("rsb0.iom0", iom)
    assembler = RuntimeAssembler(system)
    kpn = KahnProcessNetwork("scale2x")
    kpn.add_iom("io")
    kpn.add_module("x2", lambda: Scaler("x2", gain=q15(2.0)))
    kpn.add_module("x3", lambda: Scaler("x3", gain=q15(3.0)))
    kpn.connect("io", "x2")
    kpn.connect("x2", "x3")
    kpn.connect("x3", "io")
    app = assembler.assemble(kpn)
    system.run_for_cycles(300)
    assert iom.received == [6 * v for v in range(50)]
    summary = app.throughput_summary()
    assert summary["x2"] == 50
    assert summary["io"] == 50


def test_assemble_teardown_releases_channels():
    system = build_system()
    system.attach_iom("rsb0.iom0", Iom("io", source=ramp(count=5)))
    assembler = RuntimeAssembler(system)
    app = assembler.assemble(pipeline_kpn(2))
    system.run_for_cycles(100)
    assert app.teardown() == 0
    state = system.rsbs[0].router.comm_state()
    assert state.can_route(0, 1) and state.can_route(1, 2)


def test_assemble_timed_places_via_reconfiguration():
    system = build_system()
    system.attach_iom("rsb0.iom0", Iom("io", source=ramp(count=30)))
    kpn = pipeline_kpn(2)
    for node in kpn.module_nodes():
        system.register_module(node.name, node.factory)
        for prr in ("rsb0.prr0", "rsb0.prr1"):
            system.repository.preload_to_sdram(node.name, prr)
    assembler = RuntimeAssembler(system)
    system.start()
    app = system.microblaze.run_to_completion(
        assembler.assemble_timed(kpn), "assemble"
    )
    assert system.prr("rsb0.prr0").module is not None
    assert system.icap.history  # real reconfigurations happened
    system.run_for_us(10)
    iom = system.iom_slot("rsb0.iom0").iom
    assert len(iom.received) == 30
    assert len(app.channels) == 3


def test_assemble_infeasible_edges_detected():
    """A KPN needing more module-out ports than ki=1 provides."""
    system = build_system()
    assembler = RuntimeAssembler(system)
    kpn = KahnProcessNetwork("converge")
    kpn.add_iom("io")
    kpn.add_module("a", lambda: PassThrough("a"))
    kpn.add_module("b", lambda: PassThrough("b"))
    kpn.connect("io", "a")
    kpn.connect("a", "b")
    kpn.connect("b", "io")
    # manually route a conflicting channel into prr1 (= b's slot)
    system.place_module_directly(PassThrough("squatter"), "rsb0.prr1")
    system.open_stream("rsb0.iom0", "rsb0.prr1")
    system.prr("rsb0.prr1").unload()
    with pytest.raises(AssemblyError, match="capacity"):
        assembler.assemble(kpn)
