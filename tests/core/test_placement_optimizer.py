"""Unit tests for the hop-minimising placement optimizer."""

import pytest

from repro.core import RsbParameters, SystemParameters, VapresSystem
from repro.core.assembly import AssemblyError, RuntimeAssembler
from repro.core.kpn import KahnProcessNetwork
from repro.modules import Iom
from repro.modules.sources import ramp
from repro.modules.transforms import PassThrough


def build_system(num_prrs=4):
    params = SystemParameters(
        board="ML402",
        rsbs=[
            RsbParameters(
                name="rsb0",
                num_prrs=num_prrs,
                num_ioms=2,
                iom_positions=[0, num_prrs + 1],
            )
        ],
    )
    return VapresSystem(params)


def chain_kpn(stages):
    kpn = KahnProcessNetwork("chain")
    kpn.add_iom("in")
    kpn.add_iom("out")
    previous = "in"
    for index in range(stages):
        name = f"s{index}"
        kpn.add_module(name, lambda n=name: PassThrough(n))
        kpn.connect(previous, name)
        previous = name
    kpn.connect(previous, "out")
    return kpn


def test_optimized_never_worse_than_auto():
    system = build_system()
    assembler = RuntimeAssembler(system)
    kpn = chain_kpn(3)
    auto = assembler.auto_placement(kpn)
    optimized = assembler.optimized_placement(kpn)
    assert assembler.placement_hop_cost(kpn, optimized) <= (
        assembler.placement_hop_cost(kpn, auto)
    )


def test_optimized_chain_is_monotone_along_the_array():
    """A linear chain ends up placed in array order (minimal hops)."""
    system = build_system()
    assembler = RuntimeAssembler(system)
    kpn = chain_kpn(4)
    placement = assembler.optimized_placement(kpn)
    positions = [
        system.slot(placement[f"s{i}"]).position for i in range(4)
    ]
    assert positions == sorted(positions)
    # total cost: in(0)->s0, s0->..->s3, s3->out(5): all single hops
    assert assembler.placement_hop_cost(kpn, placement) == 5


def test_optimizer_beats_auto_on_reversed_chain():
    """A KPN declared in reverse order defeats the naive zipper but not
    the optimizer."""
    system = build_system()
    assembler = RuntimeAssembler(system)
    kpn = KahnProcessNetwork("reversed")
    kpn.add_iom("in")
    kpn.add_iom("out")
    # declare the last stage first: auto placement zips declaration order
    kpn.add_module("last", lambda: PassThrough("last"))
    kpn.add_module("first", lambda: PassThrough("first"))
    kpn.connect("in", "first")
    kpn.connect("first", "last")
    kpn.connect("last", "out")
    auto_cost = assembler.placement_hop_cost(kpn, assembler.auto_placement(kpn))
    optimized_cost = assembler.placement_hop_cost(
        kpn, assembler.optimized_placement(kpn)
    )
    assert optimized_cost < auto_cost


def test_optimized_placement_validates_and_runs():
    system = build_system()
    source = Iom("src", source=ramp(count=200))
    sink = Iom("dst")
    system.attach_iom("rsb0.iom0", source)
    system.attach_iom("rsb0.iom1", sink)
    assembler = RuntimeAssembler(system)
    kpn = chain_kpn(3)
    placement = assembler.optimized_placement(kpn)
    assembler.check_placement(kpn, placement)
    assembler.assemble(kpn, placement)
    system.run_for_cycles(900)
    assert sink.received == list(range(200))


def test_optimizer_respects_occupied_slots():
    system = build_system()
    system.place_module_directly(PassThrough("squatter"), "rsb0.prr0")
    assembler = RuntimeAssembler(system)
    kpn = chain_kpn(3)
    placement = assembler.optimized_placement(kpn)
    assert "rsb0.prr0" not in placement.values()


def test_optimizer_oversubscription():
    system = build_system(num_prrs=2)
    assembler = RuntimeAssembler(system)
    with pytest.raises(AssemblyError, match="not enough"):
        assembler.optimized_placement(chain_kpn(3))


def test_large_networks_fall_back_to_auto():
    system = build_system(num_prrs=4)
    assembler = RuntimeAssembler(system)
    kpn = chain_kpn(4)
    fallback = assembler.optimized_placement(kpn, max_exhaustive=2)
    assert fallback == assembler.auto_placement(kpn)
