"""Unit tests for the KPN application model."""

import pytest

from repro.core.kpn import KahnProcessNetwork, KpnError
from repro.modules.transforms import PassThrough


def factory(name):
    return lambda: PassThrough(name)


def linear_kpn():
    kpn = KahnProcessNetwork("pipeline")
    kpn.add_iom("src")
    kpn.add_module("a", factory("a"))
    kpn.add_module("b", factory("b"))
    kpn.add_iom("dst")
    kpn.connect("src", "a")
    kpn.connect("a", "b")
    kpn.connect("b", "dst")
    return kpn


def test_module_node_needs_factory():
    kpn = KahnProcessNetwork()
    with pytest.raises(KpnError, match="factory"):
        kpn.add_module("a", None)


def test_duplicate_node_rejected():
    kpn = KahnProcessNetwork()
    kpn.add_iom("x")
    with pytest.raises(KpnError, match="duplicate"):
        kpn.add_iom("x")


def test_connect_unknown_node():
    kpn = KahnProcessNetwork()
    kpn.add_iom("x")
    with pytest.raises(KpnError, match="unknown node"):
        kpn.connect("x", "y")


def test_connect_port_bounds():
    kpn = KahnProcessNetwork()
    kpn.add_iom("x", outputs=1)
    kpn.add_module("m", factory("m"), inputs=1)
    with pytest.raises(KpnError, match="no output port"):
        kpn.connect("x", "m", src_port=1)
    with pytest.raises(KpnError, match="no input port"):
        kpn.connect("x", "m", dst_port=2)


def test_port_exclusivity():
    kpn = KahnProcessNetwork()
    kpn.add_iom("x")
    kpn.add_module("a", factory("a"))
    kpn.add_module("b", factory("b"))
    kpn.connect("x", "a")
    with pytest.raises(KpnError, match="already connected"):
        kpn.connect("x", "b")  # output port 0 reused


def test_duplicate_edge_rejected():
    kpn = KahnProcessNetwork()
    kpn.add_iom("x")
    kpn.add_module("a", factory("a"))
    kpn.connect("x", "a")
    with pytest.raises(KpnError):
        kpn.connect("x", "a")


def test_predecessors_successors():
    kpn = linear_kpn()
    assert [e.src for e in kpn.predecessors("b")] == ["a"]
    assert [e.dst for e in kpn.successors("a")] == ["b"]


def test_validate_flags_dangling_module_inputs():
    kpn = KahnProcessNetwork()
    kpn.add_module("orphan", factory("o"))
    with pytest.raises(KpnError, match="unconnected"):
        kpn.validate()


def test_validate_empty():
    with pytest.raises(KpnError, match="empty"):
        KahnProcessNetwork().validate()


def test_topological_order_linear():
    kpn = linear_kpn()
    order = kpn.topological_order()
    assert order.index("src") < order.index("a") < order.index("b")


def test_topological_order_detects_cycle():
    kpn = KahnProcessNetwork()
    kpn.add_module("a", factory("a"))
    kpn.add_module("b", factory("b"))
    kpn.connect("a", "b")
    with pytest.raises(KpnError, match="cycle"):
        kpn.connect("b", "a")
        kpn.topological_order()


def test_fork_join_topology():
    """The Figure 4 shape: a fork and a join node."""
    kpn = KahnProcessNetwork("fig4")
    kpn.add_iom("io_in")
    kpn.add_module("split", factory("s"), inputs=1, outputs=2)
    kpn.add_module("left", factory("l"))
    kpn.add_module("right", factory("r"))
    kpn.add_module("merge", factory("m"), inputs=2, outputs=1)
    kpn.add_iom("io_out")
    kpn.connect("io_in", "split")
    kpn.connect("split", "left", src_port=0)
    kpn.connect("split", "right", src_port=1)
    kpn.connect("left", "merge", dst_port=0)
    kpn.connect("right", "merge", dst_port=1)
    kpn.connect("merge", "io_out")
    kpn.validate()
    order = kpn.topological_order()
    assert order.index("split") < order.index("merge")
    assert len(kpn.module_nodes()) == 4
    assert len(kpn.iom_nodes()) == 2
