"""Unit tests for the 9-step switching methodology (paper Figure 5)."""

import pytest

from repro.analysis.metrics import interruption_report
from repro.core.switching import ModuleSwitcher
from repro.modules import Iom, MovingAverage
from repro.modules.base import staged
from repro.modules.sources import sine_wave

from tests.helpers import build_system


def make_scenario(window=4, source_count=100_000):
    """Filter A in prr0 streaming IOM->A->IOM; filter B registered."""
    system = build_system(pr_speedup=500.0)
    iom = Iom("io0", source=sine_wave(count=source_count))
    system.attach_iom("rsb0.iom0", iom)
    filter_a = MovingAverage("filterA", window=window)
    system.place_module_directly(filter_a, "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.register_module(
        "filterB", lambda: staged(MovingAverage("filterB", window=window))
    )
    system.repository.preload_to_sdram("filterB", "rsb0.prr1")
    return system, iom, filter_a, ch_in, ch_out


def run_switch(system, ch_in, ch_out, **overrides):
    switcher = ModuleSwitcher(system)
    kwargs = dict(
        old_prr="rsb0.prr0",
        new_prr="rsb0.prr1",
        new_module="filterB",
        upstream_slot="rsb0.iom0",
        downstream_slot="rsb0.iom0",
        input_channel=ch_in,
        output_channel=ch_out,
    )
    kwargs.update(overrides)
    return system.microblaze.run_to_completion(
        switcher.switch(**kwargs), "switch"
    )


def test_switch_completes_all_nine_steps():
    system, iom, _, ch_in, ch_out = make_scenario()
    system.run_for_us(30)
    report = run_switch(system, ch_in, ch_out)
    assert [step for step, _, _ in report.steps] == list(range(1, 10))
    times = [ps for _, ps, _ in report.steps]
    assert times == sorted(times)


def test_switch_loses_no_words():
    system, iom, _, ch_in, ch_out = make_scenario()
    system.run_for_us(30)
    report = run_switch(system, ch_in, ch_out)
    assert report.words_lost == 0
    system.run_for_us(30)
    discards = [
        consumer.words_discarded
        for slot in system.rsbs[0].slots
        for consumer in slot.consumers
    ]
    assert discards == [0, 0, 0]


def test_switch_transfers_state(monkeypatch=None):
    system, iom, filter_a, ch_in, ch_out = make_scenario(window=4)
    system.run_for_us(30)
    report = run_switch(system, ch_in, ch_out)
    new_module = system.prr("rsb0.prr1").module
    assert new_module.name == "filterB"
    # state registers were carried over verbatim (step 6 -> 7)
    assert len(report.state_words) == filter_a.state_word_count
    assert filter_a.save_state() == new_module.save_state() or (
        new_module.samples_in > 0  # B already advanced past the handoff
    )


def test_switch_output_is_seamless():
    """The headline claim: no stream interruption despite reconfiguration."""
    system, iom, _, ch_in, ch_out = make_scenario()
    system.run_for_us(30)
    report = run_switch(system, ch_in, ch_out)
    system.run_for_us(30)
    nominal = 1 / system.system_clock.frequency_hz
    stats = interruption_report(iom.receive_times, nominal)
    # reconfiguration took ~144 us (scaled); the output gap must be tiny
    assert report.reconfig_seconds > 1e-4
    assert stats.max_gap_s < report.reconfig_seconds / 10
    assert stats.max_gap_s < 5e-6


def test_switch_output_values_continuous():
    """Output across the boundary equals a never-switched reference run."""
    count = 3000
    system, iom, _, ch_in, ch_out = make_scenario(source_count=count)
    system.run_for_us(10)
    run_switch(system, ch_in, ch_out)
    system.run_for_us(60)
    switched_output = list(iom.received)

    reference = MovingAverage("ref", window=4)
    expected = []
    from repro.modules.state import from_u32, to_u32

    for sample in sine_wave(count=count):
        expected.append(from_u32(to_u32(reference.process(to_u32(sample)))))
    assert switched_output == expected[: len(switched_output)]
    assert len(switched_output) > 2000


def test_switch_via_cf_path():
    system, iom, _, ch_in, ch_out = make_scenario()
    system.run_for_us(10)
    report = run_switch(system, ch_in, ch_out, reconfig_path="cf2icap")
    assert report.reconfig_seconds == pytest.approx(1.043 / 500, rel=0.02)
    assert report.words_lost == 0


def test_switch_requires_resident_module():
    system, _, _, ch_in, ch_out = make_scenario()
    system.prr("rsb0.prr0").unload()
    switcher = ModuleSwitcher(system)
    with pytest.raises(ValueError, match="no module"):
        system.microblaze.run_to_completion(
            switcher.switch(
                old_prr="rsb0.prr0",
                new_prr="rsb0.prr1",
                new_module="filterB",
                upstream_slot="rsb0.iom0",
                downstream_slot="rsb0.iom0",
                input_channel=ch_in,
                output_channel=ch_out,
            ),
            "switch",
        )


def test_switch_unknown_reconfig_path():
    system, _, _, ch_in, ch_out = make_scenario()
    system.run_for_us(5)
    with pytest.raises(ValueError, match="unknown reconfig path"):
        run_switch(system, ch_in, ch_out, reconfig_path="bogus")


def test_old_prr_powered_down_after_switch():
    system, _, _, ch_in, ch_out = make_scenario()
    system.run_for_us(10)
    run_switch(system, ch_in, ch_out)
    old_slot = system.prr("rsb0.prr0")
    assert not old_slot.bufr.enabled  # clock gated (housekeeping)
    assert old_slot.producers[0].fifo.empty  # FIFOs reset


def test_report_describe_readable():
    system, _, _, ch_in, ch_out = make_scenario()
    system.run_for_us(10)
    report = run_switch(system, ch_in, ch_out)
    text = report.describe()
    assert "step 9" in text
    assert "filterB" in text
    assert report.duration_seconds > 0


# ----------------------------------------------------------------------
# drain (eviction variant of the Figure-5 path) and step observers
# ----------------------------------------------------------------------
def run_drain(system, ch_in, ch_out, **overrides):
    switcher = ModuleSwitcher(system)
    kwargs = dict(
        prr="rsb0.prr0",
        upstream_slot="rsb0.iom0",
        downstream_slot="rsb0.iom0",
        input_channel=ch_in,
        output_channel=ch_out,
    )
    kwargs.update(overrides)
    return switcher, system.microblaze.run_to_completion(
        switcher.drain(**kwargs), "drain"
    )


def test_drain_flushes_and_powers_down():
    system, iom, filter_a, ch_in, ch_out = make_scenario()
    system.start()
    system.run_for_us(20)
    words_before = len(iom.received)
    _, report = run_drain(system, ch_in, ch_out)
    assert report.prr == "rsb0.prr0"
    assert report.words_lost == 0
    assert len(iom.received) >= words_before  # buffered words delivered
    assert filter_a.halted
    assert not system.prr("rsb0.prr0").bufr.enabled
    assert report.duration_seconds > 0


def test_drain_captures_state_words():
    system, iom, _, ch_in, ch_out = make_scenario()
    system.start()
    system.run_for_us(20)
    _, report = run_drain(system, ch_in, ch_out)
    # MovingAverage checkpoints its window; count matches the module's
    assert len(report.state_words) == MovingAverage("tmp", window=4).state_word_count


def test_drain_requires_resident_module():
    system, *_ = make_scenario()
    switcher = ModuleSwitcher(system)
    with pytest.raises(ValueError, match="no module to drain"):
        next(switcher.drain(
            "rsb0.prr1",  # empty PRR
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=None,
            output_channel=None,
        ))


def test_step_observers_fire_for_switch_and_drain():
    system, iom, _, ch_in, ch_out = make_scenario()
    system.start()
    system.run_for_us(20)
    seen = []
    switcher = ModuleSwitcher(system)
    switcher.on_step.append(lambda step, when, text: seen.append(step))
    system.microblaze.run_to_completion(
        switcher.drain(
            "rsb0.prr0",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        ),
        "drain",
    )
    assert seen == [4, 5, 6, 8, 9]
