"""Unit tests for the RSB builder."""

import pytest

from repro.control.dcr import DcrBus
from repro.core.params import RsbParameters
from repro.core.rsb import IomSlot, PrrSlot, ReconfigurableStreamingBlock, RsbError
from repro.modules.iom import Iom
from repro.modules.transforms import PassThrough
from repro.sim.clock import Clock, Dcm, FixedSource, Pmcd
from repro.sim.kernel import Simulator


def make_rsb(params=None):
    sim = Simulator()
    clock = Clock(sim, freq_hz=100e6, name="sys")
    osc = FixedSource(100e6)
    dcm = Dcm(osc)
    pmcd = Pmcd(dcm.clk0)
    bus = DcrBus()
    rsb = ReconfigurableStreamingBlock(
        sim=sim,
        params=params or RsbParameters(iom_positions=[0]),
        system_clock=clock,
        fast_source=dcm.clk0,
        slow_source=pmcd.clkdiv2,
        dcr_bus=bus,
        dcr_base=0x80,
    )
    return sim, clock, bus, rsb


def test_slot_layout_matches_positions():
    _, _, _, rsb = make_rsb()
    assert isinstance(rsb.slots[0], IomSlot)
    assert isinstance(rsb.slots[1], PrrSlot)
    assert isinstance(rsb.slots[2], PrrSlot)
    assert rsb.slots[1].name == "rsb0.prr0"
    assert rsb.slots[0].name == "rsb0.iom0"


def test_switchboxes_one_per_attachment():
    _, _, _, rsb = make_rsb()
    assert len(rsb.switchboxes) == 3
    assert [b.index for b in rsb.switchboxes] == [0, 1, 2]


def test_prsockets_mapped_on_dcr_bus():
    _, _, bus, rsb = make_rsb()
    assert bus.mapped_addresses == [0x80, 0x81, 0x82]
    assert rsb.slots[1].prsocket.dcr_address == 0x81


def test_slot_by_name():
    _, _, _, rsb = make_rsb()
    assert rsb.slot_by_name("rsb0.prr1").position == 2
    with pytest.raises(RsbError):
        rsb.slot_by_name("nope")


def test_prr_slot_interfaces_and_fsls():
    _, _, _, rsb = make_rsb()
    slot = rsb.prr_slots[0]
    assert len(slot.consumers) == 1
    assert len(slot.producers) == 1
    assert slot.fsl_to_module.name.endswith(".t")
    assert slot.fsl_to_processor.name.endswith(".r")
    assert slot.slice_macros  # (33*2+8)=74 signals -> 10 macros
    assert len(slot.slice_macros) == 10


def test_prr_lcd_clock_chain():
    sim, clock, _, rsb = make_rsb()
    slot = rsb.prr_slots[0]
    assert slot.lcd_clock.frequency_hz == 100e6
    slot.bufgmux.select(1)
    assert slot.lcd_clock.frequency_hz == 50e6


def test_load_and_unload_module():
    sim, clock, _, rsb = make_rsb()
    slot = rsb.prr_slots[0]
    module = PassThrough("m")
    slot.load(module)
    assert slot.occupied
    assert module.ports.consumers == slot.consumers
    rsb.start_clocks()
    slot.consumers[0].fifo_wen = True
    slot.consumers[0].receive(True, 5)
    sim.run_for(50_000)
    assert module.samples_in == 1
    removed = slot.unload()
    assert removed is module
    assert not slot.occupied
    sim.run_for(50_000)
    assert module.samples_in == 1  # detached from the LCD clock


def test_load_replaces_existing_module():
    _, _, _, rsb = make_rsb()
    slot = rsb.prr_slots[0]
    slot.load(PassThrough("a"))
    slot.load(PassThrough("b"))
    assert slot.module.name == "b"


def test_reset_target_wired_to_prsocket():
    _, _, _, rsb = make_rsb()
    slot = rsb.prr_slots[0]
    module = PassThrough("m")
    module.flushing = True
    slot.load(module)
    slot.prsocket.write_field("PRR_reset", True)
    assert not module.flushing  # reset() ran


def test_iom_slot_attach_enables_consumer_only():
    sim, clock, _, rsb = make_rsb()
    slot = rsb.iom_slots[0]
    iom = Iom("io", source=iter([1, 2]))
    slot.attach_iom(iom)
    # the producer read-enable belongs to channel establishment, not attach
    assert not slot.producers[0].fifo_ren
    assert slot.consumers[0].fifo_wen
    clock.start()
    sim.run_for(50_000)
    assert iom.words_emitted == 2


def test_iom_reattach_detaches_old():
    sim, clock, _, rsb = make_rsb()
    slot = rsb.iom_slots[0]
    old = Iom("old", source=iter(range(100)))
    slot.attach_iom(old)
    new = Iom("new", source=iter(range(100)))
    slot.attach_iom(new)
    clock.start()
    sim.run_for(20_000)
    assert old.cycles == 0
    assert new.cycles == 2


def test_module_ids_unassigned_until_system():
    _, _, _, rsb = make_rsb()
    assert all(slot.module_id == -1 for slot in rsb.slots)


def test_custom_rsb_shape():
    params = RsbParameters(
        name="big", num_prrs=4, num_ioms=2, ki=2, ko=2, iom_positions=[0, 5]
    )
    _, _, _, rsb = make_rsb(params)
    assert len(rsb.prr_slots) == 4
    assert len(rsb.iom_slots) == 2
    assert len(rsb.prr_slots[0].consumers) == 2
    assert len(rsb.prr_slots[0].producers) == 2
