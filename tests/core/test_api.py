"""Unit tests for the Table 2 software API."""

import pytest

from repro.modules.transforms import PassThrough, ThresholdDetector

from tests.helpers import build_system


def run(system, generator, name="sw"):
    system.start()
    return system.microblaze.run_to_completion(generator, name)


def test_cf2icap_loads_module_and_takes_scaled_time():
    system = build_system(pr_speedup=1000.0)
    system.register_module("mod", lambda: PassThrough("mod"))
    start = system.sim.now
    transfer = run(system, system.api.vapres_cf2icap("mod", "rsb0.prr0"))
    assert system.prr("rsb0.prr0").module.name == "mod"
    # 1.043 s / 1000 speedup
    assert transfer.duration_seconds == pytest.approx(1.043e-3, rel=0.02)
    assert system.sim.now - start >= transfer.duration_ps


def test_array2icap_requires_preload_then_works():
    system = build_system()
    system.register_module("mod", lambda: PassThrough("mod"))
    size = run(system, system.api.vapres_cf2array("mod", "rsb0.prr1"))
    assert size == 36_408
    transfer = run(system, system.api.vapres_array2icap("mod", "rsb0.prr1"))
    assert transfer.duration_seconds == pytest.approx(71.94e-6, rel=0.02)
    assert system.prr("rsb0.prr1").module.name == "mod"


def test_cf2array_advances_time_by_cf_transfer():
    system = build_system(pr_speedup=1000.0)
    system.register_module("mod", lambda: PassThrough("mod"))
    start = system.sim.now
    run(system, system.api.vapres_cf2array("mod", "rsb0.prr0"))
    elapsed_s = (system.sim.now - start) / 1e12
    assert elapsed_s == pytest.approx(36_408 / system.cf.bytes_per_second, rel=0.05)


def test_module_clock_gates_lcd():
    system = build_system()
    slot = system.prr("rsb0.prr0")
    run(system, system.api.vapres_module_clock(slot.module_id, False))
    assert not slot.bufr.enabled
    run(system, system.api.vapres_module_clock(slot.module_id, True))
    assert slot.bufr.enabled


def test_module_clock_select_changes_frequency():
    system = build_system()
    slot = system.prr("rsb0.prr0")
    assert slot.lcd_clock.frequency_hz == 100e6
    run(system, system.api.vapres_module_clock_select(slot.module_id, 1))
    assert slot.lcd_clock.frequency_hz == 50e6


def test_module_reset_pulses_module():
    system = build_system()
    module = ThresholdDetector("t", threshold=1)
    module.exceed_count = 7
    slot = system.place_module_directly(module, "rsb0.prr0")
    run(system, system.api.vapres_module_reset(slot.module_id, True))
    assert module.exceed_count == 0
    assert slot.prsocket.in_reset
    run(system, system.api.vapres_module_reset(slot.module_id, False))
    assert not slot.prsocket.in_reset


def test_module_write_and_read_fsl():
    system = build_system()
    slot = system.prr("rsb0.prr0")

    def software():
        yield from system.api.vapres_module_write(slot.module_id, 0xAB)
        return "ok"

    run(system, software())
    assert slot.fsl_to_module.slave_read() == (0xAB, False)

    slot.fsl_to_processor.master_write(0xCD, control=True)

    def reader():
        return (yield from system.api.vapres_module_read(slot.module_id))

    assert run(system, reader()) == (0xCD, True)


def test_establish_channel_success_and_dcr_cost():
    system = build_system()
    system.place_module_directly(PassThrough("m"), "rsb0.prr0")
    state = system.api.comm_state()

    def software():
        return (
            yield from system.api.vapres_establish_channel(
                state, "rsb0.iom0", "rsb0.prr0"
            )
        )

    channel = run(system, software())
    assert channel is not None
    assert channel.d == 2
    assert system.microblaze.dcr_writes >= channel.d  # MUX_sel programming
    # endpoints enabled
    assert system.iom_slot("rsb0.iom0").producers[0].fifo_ren
    assert system.prr("rsb0.prr0").consumers[0].fifo_wen


def test_establish_channel_fails_when_lanes_exhausted():
    system = build_system()

    def open_one(dst):
        return (
            yield from system.api.vapres_establish_channel(
                None, "rsb0.iom0", dst
            )
        )

    # two channels consume both of SB0's kr=2 rightward lanes
    assert run(system, open_one("rsb0.prr1")) is not None
    assert run(system, open_one("rsb0.prr0")) is not None
    assert run(system, open_one("rsb0.prr1")) is None  # the paper's 0 return


def test_establish_channel_fails_when_consumer_port_taken():
    """ki=1: a slot accepts exactly one incoming channel."""
    system = build_system()

    def open_one(src):
        return (
            yield from system.api.vapres_establish_channel(
                None, src, "rsb0.prr1"
            )
        )

    assert run(system, open_one("rsb0.iom0")) is not None
    assert run(system, open_one("rsb0.prr0")) is None


def test_establish_channel_respects_comm_state_check():
    system = build_system()
    run(system, system.api.vapres_establish_channel(None, "rsb0.iom0", "rsb0.prr1"))
    run(system, system.api.vapres_establish_channel(None, "rsb0.iom0", "rsb0.prr1"))
    stale = system.api.comm_state()

    def attempt():
        return (
            yield from system.api.vapres_establish_channel(
                stale, "rsb0.iom0", "rsb0.prr1"
            )
        )

    assert run(system, attempt()) is None


def test_release_channel_frees_lanes():
    system = build_system()

    def cycle():
        channel = yield from system.api.vapres_establish_channel(
            None, "rsb0.iom0", "rsb0.prr0"
        )
        lost = yield from system.api.vapres_release_channel(channel)
        return lost

    assert run(system, cycle()) == 0
    state = system.api.comm_state()
    assert state.can_route(0, 1)


def test_fifo_control_and_reset_helpers():
    system = build_system()
    slot = system.prr("rsb0.prr0")
    run(system, system.api.vapres_fifo_control(slot.module_id, wen=True, ren=True))
    assert slot.consumers[0].fifo_wen and slot.producers[0].fifo_ren
    slot.producers[0].module_write(5)
    run(system, system.api.vapres_fifo_reset(slot.module_id))
    assert slot.producers[0].fifo.empty
    assert not slot.prsocket.read_field("FIFO_reset")


def test_state_word_helpers_skip_monitoring():
    system = build_system()
    slot = system.prr("rsb0.prr0")
    slot.fsl_to_processor.master_write(111, control=False)  # monitoring noise
    slot.fsl_to_processor.master_write(1, control=True)
    slot.fsl_to_processor.master_write(222, control=False)
    slot.fsl_to_processor.master_write(2, control=True)

    def software():
        return (yield from system.api.read_state_words(slot.module_id, 2))

    assert run(system, software()) == [1, 2]


def test_send_state_words():
    system = build_system()
    slot = system.prr("rsb0.prr0")

    def software():
        yield from system.api.send_state_words(slot.module_id, [9, 8])

    run(system, software())
    assert slot.fsl_to_module.slave_read() == (9, False)
    assert slot.fsl_to_module.slave_read() == (8, False)
