"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_info_lists_devices(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "XC4VLX25" in out
    assert "ML401" in out


def test_info_single_device(capsys):
    assert main(["info", "--device", "XC4VLX60"]) == 0
    out = capsys.readouterr().out
    assert "26624 slices" in out
    assert "BUFRs" in out


def test_flows_prints_summary_and_floorplan(capsys):
    assert main(["flows"]) == 0
    out = capsys.readouterr().out
    assert "9421 slices" in out
    assert "floorplan" in out


def test_flows_writes_sysdef_files(tmp_path, capsys):
    assert main(["flows", "--output", str(tmp_path / "out")]) == 0
    files = sorted(p.name for p in (tmp_path / "out").iterdir())
    assert files == [
        "vapres-custom.mhs",
        "vapres-custom.mss",
        "vapres-custom.ucf",
    ]


def test_flows_reports_overfull_design(capsys):
    code = main(["flows", "--prrs", "4", "--board", "ML401"])
    assert code == 1
    assert "failed" in capsys.readouterr().err


def test_flows_reports_unknown_board(capsys):
    code = main(["flows", "--board", "NOBOARD"])
    assert code == 1
    assert "failed" in capsys.readouterr().err


def test_flows_reports_bad_parameters(capsys):
    code = main(["flows", "--width", "0"])
    assert code == 1
    assert "failed" in capsys.readouterr().err


def test_demo_runs_switch(capsys):
    assert main(["demo", "--speedup", "2000"]) == 0
    out = capsys.readouterr().out
    assert "step 9" in out or "switch complete" in out
    assert "words lost: 0" in out


def test_experiments_regenerates_section_vb(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "9421 slices" in out
    assert "1.043" in out
    assert "MISMATCH" not in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
