"""Scrub detection, the repair ladder, and the stream watchdog."""

from repro.faults.model import CampaignConfig, FaultClass
from repro.faults.plant import FaultPlant
from repro.pr.scheduler import ReconfigScheduler

from tests.helpers import build_pipeline, build_system

SCRUB_PERIOD_US = 50.0


def make_plant(**overrides):
    system = build_system()
    scheduler = ReconfigScheduler(system.engine)
    config = CampaignConfig(
        seed=1, scrub_period_us=SCRUB_PERIOD_US, **overrides
    )
    return system, FaultPlant(system, scheduler, config)


def detect_bound_us(system, plant):
    """Worst-case scrub latency: P * period + one readback + slack."""
    from repro.pr.bitstream import FRAME_BYTES

    prrs = plant.store.prr_names
    readback_us = max(
        system.bram_buffer.icap_transfer_seconds(
            plant.store.frame_count(prr) * FRAME_BYTES
        )
        for prr in prrs
    ) * 1e6
    return len(prrs) * SCRUB_PERIOD_US + readback_us + 10.0


def inject_seu(plant, prr, frame=3, bit=7):
    event = plant.ledger.record(
        FaultClass.SEU_FRAME, prr, {"frame": frame, "bit": bit}
    )
    plant.store.flip(prr, frame, bit)
    return event


# ----------------------------------------------------------------------
# scrub-only path
# ----------------------------------------------------------------------
def test_scrub_detects_within_prr_count_times_period():
    system, plant = make_plant()
    plant.start()
    prrs = plant.store.prr_names
    event = inject_seu(plant, prrs[-1])
    bound_us = detect_bound_us(system, plant)
    system.run_for_us(bound_us)
    assert event.detected
    assert event.detected_via == "scrub"
    latency_us = (event.detected_ps - event.injected_ps) / 1e6
    assert latency_us <= bound_us


def test_scrub_repairs_by_frame_rewrite():
    system, plant = make_plant()
    plant.start()
    prr = plant.store.prr_names[0]
    event = inject_seu(plant, prr)
    system.run_for_us(detect_bound_us(system, plant) + 50.0)
    assert event.repaired
    assert event.action == "frame_rewrite"
    assert plant.store.corrupted_frames(prr) == []
    assert plant.recovery.scrub_repairs >= 1
    assert system.sim.metrics.value("repro_scrub_repairs_total") >= 1
    # the clean PRR is reported back for re-admission
    assert prr in plant.take_repaired()


def test_scrub_covers_all_prrs_round_robin():
    system, plant = make_plant()
    plant.start()
    prrs = plant.store.prr_names
    events = [inject_seu(plant, prr, frame=i) for i, prr in enumerate(prrs)]
    system.run_for_us(detect_bound_us(system, plant))
    assert all(event.detected for event in events)


# ----------------------------------------------------------------------
# escalation ladder and quarantine
# ----------------------------------------------------------------------
def test_repeated_faults_escalate_to_module_replacement():
    system, plant = make_plant(escalate_after=2, quarantine_after=99)
    plant.has_replacement_owner = True
    prr = plant.store.prr_names[0]

    plant.store.flip(prr, 0, 1)
    plant.recovery.handle_frame_fault(prr, [0])   # 1st: frame rewrite
    assert plant.take_replacements() == []

    plant.recovery.handle_frame_fault(prr, [0])   # 2nd: escalate
    assert plant.take_replacements() == [prr]


def test_escalation_without_owner_falls_back_to_rewrite():
    system, plant = make_plant(escalate_after=1, quarantine_after=99)
    assert not plant.has_replacement_owner
    prr = plant.store.prr_names[0]
    event = inject_seu(plant, prr)
    plant.recovery.handle_frame_fault(
        prr, plant.store.corrupted_frames(prr)
    )
    system.run_for_us(25.0)
    assert event.repaired
    assert event.action == "frame_rewrite"


def test_quarantine_threshold_retires_the_prr():
    system, plant = make_plant(escalate_after=99, quarantine_after=2)
    prr = plant.store.prr_names[0]
    for _ in range(2):
        plant.store.flip(prr, 0, 1)
        plant.recovery.handle_frame_fault(prr, [0])
        system.run_for_us(25.0)
    assert prr in plant.recovery.quarantined
    assert plant.take_quarantines() == [prr]
    assert system.sim.metrics.value("repro_prr_quarantined_total") == 1
    # quarantine is latched: further faults do not double-count
    plant.recovery.quarantine(prr)
    assert system.sim.metrics.value("repro_prr_quarantined_total") == 1


# ----------------------------------------------------------------------
# stream watchdog
# ----------------------------------------------------------------------
def test_watchdog_detects_stuck_credit_lane():
    system, iom, module, ch_in, ch_out = build_pipeline()
    scheduler = ReconfigScheduler(system.engine)
    config = CampaignConfig(seed=1, watchdog_polls=2)
    plant = FaultPlant(system, scheduler, config)

    system.run_for_us(2.0)  # establish flow
    event = plant.ledger.record(
        FaultClass.LANE_STUCK, f"channel#{ch_in.channel_id}"
    )
    ch_in.fault_stuck_full = True
    for _ in range(4):
        system.run_for_us(2.0)
        plant.poll()
    assert event.detected
    assert event.detected_via == "watchdog-credit"
    faults = plant.take_lane_faults()
    assert [channel.channel_id for channel, _ in faults] == [
        ch_in.channel_id
    ]

    plant.complete_lane_repair(ch_in)
    assert event.repaired
    assert event.action == "reroute"
    assert ch_in.fault_stuck_full is False


def test_watchdog_reports_ecc_correction_as_detect_and_repair():
    system, iom, module, ch_in, ch_out = build_pipeline()
    scheduler = ReconfigScheduler(system.engine)
    plant = FaultPlant(system, scheduler, CampaignConfig(seed=1))
    plant.start()

    def try_corrupt():
        for slot in (*system.prr_slots, *system.iom_slots):
            for interface in (*slot.consumers, *slot.producers):
                if interface.fifo.corrupt_word(0, 1 << 4):
                    return interface.fifo
        return None

    fifo = None
    for _ in range(200):  # wait for a word to sit in some FIFO
        system.run_for_us(0.1)
        fifo = try_corrupt()
        if fifo is not None:
            break
    assert fifo is not None, "no FIFO ever held a corruptible word"
    event = plant.ledger.record(FaultClass.FIFO_BIT, fifo.name)
    system.run_for_us(5.0)
    plant.poll()
    assert event.detected and event.repaired
    assert event.detected_via == "ecc"
    assert event.action == "ecc_correct"
