"""Unit tests for the fault model: seeds, config, events, frame store."""

import zlib

import pytest

from repro.faults.model import (
    CampaignConfig,
    FaultClass,
    FaultEvent,
    FaultLedger,
    FrameStore,
    derive_seed,
    rng_for,
)

from tests.helpers import build_system


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
def test_derive_seed_is_crc32_of_seed_and_stream():
    # pinned to the CRC32 formula: any change breaks stored campaign
    # reproducibility, so the test computes the expectation inline
    assert derive_seed(42, "seu") == zlib.crc32(b"42:seu") & 0xFFFFFFFF
    assert derive_seed(0, "lane") == zlib.crc32(b"0:lane") & 0xFFFFFFFF


def test_derive_seed_streams_are_independent():
    seeds = {derive_seed(7, s) for s in ("seu", "lane", "fifo", "icap")}
    assert len(seeds) == 4


def test_rng_for_reproduces_the_same_draws():
    a = [rng_for(11, "seu").random() for _ in range(5)]
    b = [rng_for(11, "seu").random() for _ in range(5)]
    assert a == b
    assert a != [rng_for(12, "seu").random() for _ in range(5)]


# ----------------------------------------------------------------------
# campaign config validation
# ----------------------------------------------------------------------
def test_config_requires_integer_seed():
    with pytest.raises(ValueError, match="literal integer"):
        CampaignConfig(seed="random")  # type: ignore[arg-type]
    with pytest.raises(ValueError, match="literal integer"):
        CampaignConfig(seed=True)  # type: ignore[arg-type]
    with pytest.raises(ValueError, match="literal integer"):
        CampaignConfig(seed=None)  # type: ignore[arg-type]


def test_from_dict_rejects_missing_seed_citing_vap502():
    with pytest.raises(ValueError, match="VAP502"):
        CampaignConfig.from_dict({"seu_frames": 2})


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown campaign config keys"):
        CampaignConfig.from_dict({"seed": 1, "sue_frames": 2})


def test_config_rejects_bad_counts_and_durations():
    with pytest.raises(ValueError, match="seu_frames"):
        CampaignConfig(seed=1, seu_frames=-1)
    with pytest.raises(ValueError, match="duration_us"):
        CampaignConfig(seed=1, duration_us=0)
    with pytest.raises(ValueError, match="scrub_period_us"):
        CampaignConfig(seed=1, scrub_period_us=-5)


def test_config_roundtrips_through_dict():
    config = CampaignConfig(
        seed=9, duration_us=500.0, seu_frames=3, escalate_after=1
    )
    assert CampaignConfig.from_dict(config.to_dict()) == config


# ----------------------------------------------------------------------
# events and the ledger
# ----------------------------------------------------------------------
def test_event_to_dict_reports_integer_microseconds():
    event = FaultEvent(
        fault_id=0,
        fault_class=FaultClass.SEU_FRAME,
        target="rsb0.prr0",
        injected_ps=1_500_000,   # 1.5 us floors to 1
        detected_ps=3_999_999,   # 3.999999 us floors to 3
        detail={"b": 1, "a": 2},
    )
    data = event.to_dict()
    assert data["injected_us"] == 1
    assert data["detected_us"] == 3
    assert data["repaired_us"] is None
    assert list(data["detail"]) == ["a", "b"]


def test_ledger_lifecycle_feeds_metrics_with_integer_latencies():
    system = build_system()
    ledger = FaultLedger(system.sim)
    event = ledger.record(FaultClass.FIFO_BIT, "fifo.x")
    system.sim.schedule(2_500_000, lambda: ledger.mark_detected(event, "ecc"))
    system.sim.schedule(
        2_500_000, lambda: ledger.mark_repaired(event, "ecc_correct")
    )
    system.sim.run()
    assert event.detected and event.repaired
    assert event.detected_via == "ecc"
    assert event.action == "ecc_correct"
    metrics = system.sim.metrics
    assert metrics.value(
        "repro_faults_detected_total", {"class": "fifo_bit"}
    ) == 1
    histogram = metrics.get("repro_fault_detect_latency_us")
    assert histogram.count == 1
    assert histogram.sum == 2  # 2.5 us floored to a whole microsecond
    counts = ledger.counts()
    assert counts["injected"]["fifo_bit"] == 1
    assert counts["injected"]["seu_frame"] == 0  # zero-initialised classes


# ----------------------------------------------------------------------
# frame store
# ----------------------------------------------------------------------
def test_frame_store_flip_detect_repair_roundtrip():
    system = build_system()
    store = FrameStore(system.floorplan)
    prr = store.prr_names[0]
    assert store.frame_count(prr) > 0
    assert store.crc(prr) == store.golden_crc(prr)

    store.program(prr, "fir")
    assert store.loaded[prr] == "fir"
    assert store.corrupted_frames(prr) == []

    store.flip(prr, 5, 17)
    assert store.corrupted_frames(prr) == [5]
    assert store.crc(prr) != store.golden_crc(prr)

    assert store.repair(prr) == 1
    assert store.corrupted_frames(prr) == []
    assert store.crc(prr) == store.golden_crc(prr)


def test_frame_store_images_depend_on_module_and_prr():
    system = build_system()
    store = FrameStore(system.floorplan)
    a, b = store.prr_names[:2]
    store.program(a, "fir")
    store.program(b, "fir")
    assert store.crc(a) != store.crc(b)
    before = store.crc(a)
    store.program(a, "iir")
    assert store.crc(a) != before
