"""Campaign-level acceptance: zero-loss recovery, scrub bound, and
byte-identical resilience reports."""

import json
from pathlib import Path

import pytest

from repro.faults.campaign import (
    REPORT_SCHEMA_VERSION,
    FaultCampaign,
    load_campaign_input,
    run_campaign,
)
from repro.faults.model import CampaignConfig
from repro.runtime.jobs import JobError, SourceSpec, StageSpec, StreamJob

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_jobs(count, words=12_000):
    return [
        StreamJob(
            name=f"j{i}",
            stages=[StageSpec("passthrough")],
            source=SourceSpec(kind="ramp", count=words),
            requeue_on_eviction=True,
        )
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# input loading
# ----------------------------------------------------------------------
def test_load_preset_synthesises_a_victim_job():
    loaded = load_campaign_input("prototype")
    assert loaded.name == "prototype"
    assert loaded.mode == "colocate"
    assert [job.name for job in loaded.jobs] == ["campaign-victim"]
    assert loaded.jobs[0].requeue_on_eviction
    # campaigns default to fast simulated reconfiguration
    assert loaded.params.pr_speedup == 1000.0


def test_load_jobfile_carries_jobs_and_executor_tuning():
    loaded = load_campaign_input(
        str(REPO_ROOT / "examples" / "jobfiles" / "campaign.json")
    )
    assert loaded.name == "fault-campaign"
    assert [job.name for job in loaded.jobs] == ["victim"]
    assert loaded.executor.quantum_us == 25.0


def test_load_rejects_missing_and_malformed_targets(tmp_path):
    with pytest.raises(JobError, match="cannot read"):
        load_campaign_input(str(tmp_path / "nope.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]")
    with pytest.raises(JobError, match="JSON object"):
        load_campaign_input(str(bad))


def test_campaign_rejects_bad_mode_and_empty_jobs():
    config = CampaignConfig(seed=1)
    with pytest.raises(JobError, match="mode"):
        FaultCampaign(config, make_jobs(1), mode="turbo")
    with pytest.raises(JobError, match="at least one job"):
        FaultCampaign(config, [])


# ----------------------------------------------------------------------
# headline acceptance: Figure-5 recovery loses nothing
# ----------------------------------------------------------------------
def test_figure5_recovery_loses_zero_samples():
    loaded = load_campaign_input("prototype")
    config = CampaignConfig(
        seed=7,
        duration_us=600.0,
        seu_frames=1,
        scrub_period_us=100.0,
        escalate_after=1,
    )
    result = run_campaign(config, loaded.jobs, params=loaded.params)
    report = result.resilience
    assert report["schema_version"] == REPORT_SCHEMA_VERSION
    assert report["figure5"]["recoveries"] >= 1
    assert report["figure5"]["samples_lost"] == 0
    assert report["jobs"]["words_out"] == 50_000
    assert report["jobs"]["words_lost"] == 0
    assert report["jobs"]["degraded"] == ["campaign-victim"]
    assert report["jobs"]["failed"] == []
    switch_events = [
        event for event in report["events"]
        if event["action"] == "module_switch"
    ]
    assert switch_events, "expected a Figure-5 module-switch repair"


def test_scrub_only_campaign_repairs_within_the_period_bound():
    loaded = load_campaign_input("prototype")
    config = CampaignConfig(
        seed=3,
        duration_us=600.0,
        seu_frames=2,
        scrub_period_us=100.0,
        escalate_after=99,
        quarantine_after=99,
    )
    result = run_campaign(config, loaded.jobs, params=loaded.params)
    report = result.resilience
    assert report["faults"]["injected"]["seu_frame"] == 2
    assert report["faults"]["detected"]["seu_frame"] == 2
    assert report["faults"]["repaired"]["seu_frame"] == 2
    assert report["scrub"]["passes"] > 0
    assert report["scrub"]["repairs"] >= 1
    # worst case: every PRR scrubbed once per round trip, plus one
    # readback (~50 us here) and scheduling slack
    bound_us = loaded.params.total_prrs * config.scrub_period_us + 100.0
    for event in report["events"]:
        if event["class"] != "seu_frame":
            continue
        assert event["action"] == "frame_rewrite"
        assert event["detected_us"] - event["injected_us"] <= bound_us


# ----------------------------------------------------------------------
# determinism contract
# ----------------------------------------------------------------------
def test_colocate_report_is_byte_identical_across_runs():
    config = CampaignConfig(
        seed=11, duration_us=300.0, seu_frames=1, fifo_bit=1,
        scrub_period_us=100.0, escalate_after=1,
    )
    first = run_campaign(config, make_jobs(1)).to_json()
    second = run_campaign(config, make_jobs(1)).to_json()
    assert first == second
    assert json.loads(first)["mode"] == "colocate"


def test_fleet_report_is_identical_across_worker_counts():
    config = CampaignConfig(
        seed=11, duration_us=300.0, seu_frames=1, fifo_bit=1,
        scrub_period_us=100.0, escalate_after=1,
    )

    def run(workers):
        return run_campaign(
            config, make_jobs(3), mode="fleet",
            workers=workers, use_processes=False,
        ).to_json()

    solo, trio = run(1), run(3)
    assert solo == trio
    report = json.loads(solo)
    # nothing run-environment-dependent may appear in the report
    assert report["sim_us"] is None
    assert "workers" not in solo
    assert "wall" not in solo
