"""The ``python -m repro faults`` command."""

import json

from repro.__main__ import main


def test_faults_requires_an_explicit_seed(capsys):
    rc = main(["faults", "prototype"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "VAP502" in err
    assert "--seed" in err


def test_faults_lints_the_target_before_running(tmp_path, capsys):
    target = tmp_path / "jobs.json"
    target.write_text(json.dumps({
        "name": "bad",
        "jobs": [{
            "name": "j0",
            "stages": ["passthrough"],
            "source": {"kind": "noise", "count": 10, "seed": "random"},
        }],
    }))
    rc = main(["faults", str(target), "--seed", "5"])
    assert rc == 2
    assert "VAP503" in capsys.readouterr().err


def test_faults_runs_a_campaign_and_writes_the_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = main([
        "faults", "prototype",
        "--seed", "3",
        "--duration-us", "300",
        "--seu", "1",
        "--scrub-period-us", "100",
        "--json",
        "--output", str(out),
    ])
    assert rc == 0
    stdout = capsys.readouterr().out
    report = json.loads(stdout)
    assert report["campaign"]["seed"] == 3
    assert report["faults"]["injected"]["seu_frame"] == 1
    assert report["faults"]["repaired"]["seu_frame"] == 1
    assert json.loads(out.read_text()) == report
