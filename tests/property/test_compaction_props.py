"""Property tests: compaction plans stay sound against the real ledger.

The planner works on a plain-data snapshot of one admission controller;
its three load-bearing promises are

* a move sequence is *applicable*: every move's target PRR is free at
  the moment that move runs (no two live modules ever share a PRR),
* a non-empty plan pays for itself: replayed against the controller it
  was planned from, the largest free PRR run strictly grows and no free
  capacity is lost,
* relocation is invisible to the data path: a job moved mid-stream
  produces exactly the words it produces when nothing moves it.

Placement maps come from a *real* :class:`AdmissionController` on the
churn layout -- random pinned residents admitted through the normal
enqueue/decide/occupy path -- so the snapshots the planner sees here are
exactly the ones it sees in production.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.compact import churn_jobs, churn_params
from repro.compact.planner import plan_compaction, view_from_admission
from repro.runtime.admission import AdmissionController, AdmissionDecision
from repro.runtime.executor import ExecutorConfig, JobExecutor
from repro.runtime.jobs import (
    Job,
    JobState,
    SourceSpec,
    StageSpec,
    StreamJob,
)

PRRS = [f"rsb0.prr{i}" for i in range(6)]
IOMS = [f"rsb0.iom{i}" for i in range(3)]


def pinned_job(name, iom, prr, index):
    spec = StreamJob(
        name=name,
        stages=[StageSpec("passthrough")],
        source=SourceSpec("ramp", count=100),
        iom=iom,
        prrs=[prr],
        preemptible=False,
    )
    return Job(spec, index=index)


@st.composite
def admitted_ledgers(draw):
    """A live controller with 1-3 randomly pinned residents.

    Each candidate goes through the production admission path; pinnings
    the lane model cannot route are simply withdrawn, so every drawn
    ledger is a reachable serving state, never a synthetic one.
    """
    count = draw(st.integers(min_value=1, max_value=3))
    prrs = draw(st.permutations(PRRS))[:count]
    ioms = draw(st.permutations(IOMS))[:count]
    controller = AdmissionController(churn_params())
    residents = {}
    for i, (iom, prr) in enumerate(zip(ioms, prrs)):
        job = pinned_job(f"job{i}", iom, prr, i)
        result = controller.enqueue(job, 0.0)
        if result.decision is not AdmissionDecision.QUEUE:
            continue
        pick = controller.next_decision(0.0, [])
        if pick is None:
            controller.withdraw(job)
            continue
        picked, decision = pick
        controller.occupy(picked, decision.assignment)
        picked.assignment = decision.assignment
        picked.transition(JobState.ADMITTED, 0.0)
        residents[picked.spec.name] = picked
    assume(residents)
    return controller, residents


@settings(max_examples=60, deadline=None)
@given(data=admitted_ledgers())
def test_moves_never_overlap_two_live_modules(data):
    """Replaying the move list over an occupancy model, every target is
    free when its move runs and every source matches the mover's actual
    placement at that point in the sequence."""
    controller, residents = data
    views = view_from_admission(controller, movable=set(residents))
    plan = plan_compaction(views)
    occupied = {
        prr
        for job in residents.values()
        for prr in job.assignment.prrs
    }
    location = {
        name: list(job.assignment.prrs)
        for name, job in residents.items()
    }
    for move in plan.moves:
        assert move.job in residents
        assert move.new_prr not in occupied
        assert location[move.job][move.stage] == move.old_prr
        occupied.discard(move.old_prr)
        occupied.add(move.new_prr)
        location[move.job][move.stage] = move.new_prr


@settings(max_examples=60, deadline=None)
@given(data=admitted_ledgers())
def test_nonempty_plans_strictly_grow_the_largest_run(data):
    """Applied to the controller it was planned from, move by move, a
    non-empty plan lands exactly on its predicted stats: same free
    total, strictly larger largest run."""
    controller, residents = data
    views = view_from_admission(controller, movable=set(residents))
    plan = plan_compaction(views)
    before = controller.free_run_stats()
    assert plan.before == before
    if plan.empty:
        assert plan.after == before
        return
    for move in plan.moves:
        controller.relocate(residents[move.job], move.old_prr, move.new_prr)
    after = controller.free_run_stats()
    assert after == plan.after
    assert after[1] > before[1]
    assert after[0] == before[0]


CONFIG = dict(quantum_us=25.0, max_us=20_000.0)


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_relocated_jobs_match_their_solo_fingerprints(seed):
    """Zero loss, end to end: whatever churn shape the seed draws, every
    job compaction relocates emits the words it emits when it runs alone
    on an undisturbed system."""
    specs = churn_jobs(
        waves=1,
        seed=seed,
        long_words=1_500,
        short_words=400,
        short_deadline_us=None,
    )
    executor = JobExecutor(
        params=churn_params(),
        config=ExecutorConfig(compaction="on", **CONFIG),
    )
    report = executor.run(specs)
    outputs = {
        job.spec.name: list(job.output_words) for job in executor._jobs
    }
    relocated = [j.name for j in report.jobs if j.relocations > 0]
    states = {j.name: j.state for j in report.jobs}
    for spec in specs:
        if spec.name not in relocated:
            continue
        assert states[spec.name] == "DONE"
        solo = JobExecutor(
            params=churn_params(),
            config=ExecutorConfig(compaction="off", **CONFIG),
        )
        solo.run([spec])
        (job,) = solo._jobs
        assert outputs[spec.name] == list(job.output_words), spec.name
