"""Property tests: state save/restore is a faithful transplant.

The switching methodology's correctness rests on `save_state` /
`restore_state` being lossless for every module type: processing a stream
through one module must equal processing a prefix through module A,
transplanting, and processing the suffix through module B.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.modules.base import ModulePorts
from repro.modules.filters import Q15_ONE, FirFilter, MovingAverage
from repro.modules.state import from_u32, to_u32
from repro.modules.transforms import (
    Crc32,
    Decimator,
    DeltaEncoder,
    MinMaxTracker,
)

samples = st.lists(
    st.integers(-(2**20), 2**20), min_size=1, max_size=60
)


def run(module, stream):
    consumer = ConsumerInterface("c", depth=4096)
    producer = ProducerInterface("p", depth=4096)
    consumer.fifo_wen = True
    module.bind(ModulePorts([consumer], [producer], FslLink("t"), FslLink("r")))
    for sample in stream:
        consumer.receive(True, to_u32(sample))
    for _ in range(len(stream) * (module.cycles_per_sample + 1) + 8):
        module.commit()
    out = []
    while not producer.fifo.empty:
        out.append(from_u32(producer.fifo.pop()))
    return out


FACTORIES = [
    lambda: FirFilter("fir", [Q15_ONE // 4, Q15_ONE // 2, Q15_ONE // 4]),
    lambda: MovingAverage("avg", window=3),
    lambda: DeltaEncoder("delta"),
    lambda: Crc32("crc"),
    lambda: MinMaxTracker("mm"),
    lambda: Decimator("dec", factor=3),
]

# the conditioning library participates in the same transplant contract
from repro.modules.conditioning import (  # noqa: E402
    Accumulator,
    NoiseGate,
    PeakHold,
)

FACTORIES += [
    lambda: PeakHold("peak", decay_shift=3),
    lambda: NoiseGate("gate", open_at=1000),
    lambda: Accumulator("acc", window=4),
]


@given(
    stream=samples,
    cut=st.integers(0, 60),
    factory_index=st.integers(0, len(FACTORIES) - 1),
)
@settings(max_examples=120, deadline=None)
def test_transplant_equals_uninterrupted_run(stream, cut, factory_index):
    factory = FACTORIES[factory_index]
    cut = min(cut, len(stream))
    reference = run(factory(), stream)
    first = factory()
    head = run(first, stream[:cut])
    second = factory()
    second.restore_state(first.save_state())
    tail = run(second, stream[cut:])
    assert head + tail == reference


@given(
    words=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=10),
)
@settings(max_examples=80, deadline=None)
def test_restore_then_save_is_identity(words):
    """For any register image, restore -> save reproduces it exactly."""
    module = FirFilter("fir", [Q15_ONE] * len(words))
    module.restore_state(words)
    assert module.save_state() == [w & 0xFFFFFFFF for w in words]


@given(value=st.integers(-(2**31), 2**31 - 1))
def test_wire_roundtrip_total(value):
    assert from_u32(to_u32(value)) == value
