"""Property tests: fleet execution is deterministic in the worker count.

The FleetExecutor's contract is that sharding is a pure wall-clock
optimisation: every job runs single-tenant on a fresh simulated system
seeded from its own name, so the same job list must yield bit-identical
per-job telemetry (outputs, final states, gap statistics) whether it is
served by one worker or four.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SystemParameters
from repro.runtime import (
    ExecutorConfig,
    FleetExecutor,
    SourceSpec,
    StageSpec,
    StreamJob,
)

FAST = replace(SystemParameters.prototype(), pr_speedup=20_000.0)
CONFIG = ExecutorConfig(quantum_us=10.0, max_us=5_000.0)

stage_specs = st.sampled_from([
    StageSpec("passthrough"),
    StageSpec("abs"),
    StageSpec("moving_average", {"window": 4}),
    StageSpec("scaler", {"gain": 3}),
    StageSpec("delta_encoder"),
])

source_specs = st.builds(
    SourceSpec,
    kind=st.sampled_from(["ramp", "sine", "noise"]),
    count=st.integers(min_value=20, max_value=120),
)


@st.composite
def job_lists(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    return [
        StreamJob(
            name=f"job{i}",
            stages=[draw(stage_specs)],
            source=draw(source_specs),
            priority=draw(st.integers(min_value=0, max_value=3)),
        )
        for i in range(n)
    ]


def comparable(report):
    """Per-job telemetry minus the shard id (the only legal difference)."""
    rows = []
    for job in report.jobs:
        row = job.to_dict()
        row.pop("shard")
        rows.append(row)
    return rows


@settings(max_examples=8, deadline=None)
@given(jobs=job_lists())
def test_worker_count_never_changes_results(jobs):
    single = FleetExecutor(
        workers=1, params=FAST, config=CONFIG, use_processes=False
    ).run(jobs)
    quad = FleetExecutor(
        workers=4, params=FAST, config=CONFIG, use_processes=False
    ).run(jobs)
    assert comparable(single) == comparable(quad)
    assert all(job.state == "DONE" for job in single.jobs)


@settings(max_examples=6, deadline=None)
@given(
    count=st.integers(min_value=20, max_value=100),
    seed_name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll",)),
        min_size=1, max_size=8,
    ),
)
def test_seeded_sources_depend_only_on_job_name(count, seed_name):
    """A noise-fed job's output is a function of its name, not its shard."""
    job = StreamJob(
        name=seed_name,
        stages=[StageSpec("passthrough")],
        source=SourceSpec("noise", count=count),
    )
    runs = [
        FleetExecutor(
            workers=w, params=FAST, config=CONFIG, use_processes=False
        ).run([job])
        for w in (1, 2)
    ]
    first, second = (comparable(r) for r in runs)
    assert first == second
