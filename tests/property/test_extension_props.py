"""Property tests for the extension subsystems: scheduler, relocation
and spanning validation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.icap import IcapController
from repro.control.memory import BramBuffer, CompactFlash, Sdram
from repro.fabric.device import get_device
from repro.fabric.floorplan import Floorplan
from repro.fabric.geometry import Rect
from repro.pr.bitstream import bitstream_for_rect
from repro.pr.reconfig import ReconfigurationEngine
from repro.pr.relocation import can_relocate, relocation_classes
from repro.pr.repository import BitstreamRepository
from repro.pr.scheduler import ReconfigScheduler
from repro.sim.kernel import Simulator


# ----------------------------------------------------------------------
# scheduler: FIFO order and non-overlap under random request streams
# ----------------------------------------------------------------------
@given(
    requests=st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from(["array2icap", "cf2icap"])),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=30, deadline=None)
def test_scheduler_serialises_any_request_stream(requests):
    sim = Simulator()
    repo = BitstreamRepository(CompactFlash(), Sdram(1 << 24))
    engine = ReconfigurationEngine(sim, IcapController(sim), repo, BramBuffer())
    for prr in range(4):
        bitstream = bitstream_for_rect("m", f"prr{prr}", Rect(0, 0, 4, 16))
        repo.register(bitstream)
        repo.preload_to_sdram("m", f"prr{prr}")
    scheduler = ReconfigScheduler(engine)
    submitted = [
        scheduler.submit("m", f"prr{prr}", path) for prr, path in requests
    ]
    sim.run()
    # all completed, in submission order
    assert [r.prr_name for r in scheduler.completed] == [
        f"prr{prr}" for prr, _ in requests
    ]
    assert all(r.done for r in submitted)
    # transfers never overlapped on the single ICAP
    history = engine.icap.history
    for earlier, later in zip(history, history[1:]):
        assert later.start_ps >= earlier.end_ps


# ----------------------------------------------------------------------
# relocation: compatibility is reflexive/symmetric; classes partition
# ----------------------------------------------------------------------
def _placements(data, device, count):
    plan = Floorplan(device)
    placements = []
    for index in range(count):
        width = data.draw(st.integers(2, 10), label=f"w{index}")
        height = data.draw(st.sampled_from([8, 16]), label=f"h{index}")
        band = index  # keep placements legal: one band each
        row_offset = data.draw(st.sampled_from([0, 8]), label=f"o{index}")
        if row_offset + height > 16:
            row_offset = 0
        try:
            placements.append(
                plan.place_prr(
                    f"p{index}", Rect(0, band * 16 + row_offset, width, height)
                )
            )
        except Exception:
            continue
    return placements


@given(data=st.data(), count=st.integers(1, 5))
@settings(max_examples=50, deadline=None)
def test_relocation_compatibility_properties(data, count):
    device = get_device("XC4VLX200")
    placements = _placements(data, device, count)
    for a in placements:
        assert can_relocate(a, a)  # reflexive
        for b in placements:
            assert can_relocate(a, b) == can_relocate(b, a)  # symmetric
    classes = relocation_classes(placements)
    # classes partition the placement set
    assert sum(len(group) for group in classes) == len(placements)
    flattened = [p.name for group in classes for p in group]
    assert sorted(flattened) == sorted(p.name for p in placements)
    # within a class, all pairs are compatible with the anchor
    for group in classes:
        anchor = group[0]
        for member in group[1:]:
            assert can_relocate(anchor, member)


# ----------------------------------------------------------------------
# spanning: validation accepts exactly the contiguous, in-reach spans
# ----------------------------------------------------------------------
@given(
    start=st.integers(0, 3),
    length=st.integers(2, 4),
)
@settings(max_examples=25, deadline=None)
def test_spanning_validation_matches_bufr_reach(start, length):
    from repro.core import RsbParameters, SystemParameters, VapresSystem
    from repro.core.spanning import SpanningError, SpanningRegion

    params = SystemParameters(
        board="ML403",
        rsbs=[
            RsbParameters(
                name="rsb0", num_prrs=5, num_ioms=1, iom_positions=[0]
            )
        ],
    )
    system = VapresSystem(params)
    names = [f"rsb0.prr{start + offset}" for offset in range(length)]
    if start + length > 5:
        return  # out of range; nothing to test
    if length <= 3:
        span = SpanningRegion(system, names)
        assert span.slices == 640 * length
    else:
        try:
            SpanningRegion(system, names)
        except SpanningError as error:
            assert "BUFR" in str(error)
        else:  # pragma: no cover
            raise AssertionError("4-region span must be rejected")
