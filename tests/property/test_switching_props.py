"""Property tests: the switching methodology is correct for arbitrary
stateful modules and switch timing.

For any module type from the library, any state size, and any point in
the stream at which the MicroBlaze decides to swap, the methodology must
lose zero words and produce output identical to a never-switched
reference module.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.switching import ModuleSwitcher
from repro.modules import Iom
from repro.modules.base import staged
from repro.modules.filters import Q15_ONE, FirFilter, MovingAverage
from repro.modules.sources import ramp
from repro.modules.state import from_u32, to_u32
from repro.modules.transforms import (
    Crc32,
    Decimator,
    DeltaEncoder,
    MinMaxTracker,
)

from tests.helpers import build_system

FACTORIES = {
    "avg": lambda: MovingAverage("m", window=3),
    "fir": lambda: FirFilter("m", [Q15_ONE // 2, Q15_ONE // 2]),
    "delta": lambda: DeltaEncoder("m"),
    "crc": lambda: Crc32("m"),
    "minmax": lambda: MinMaxTracker("m"),
    # variable-rate: the swap must preserve the decimation phase
    "decim": lambda: Decimator("m", factor=3),
}


@given(
    kind=st.sampled_from(sorted(FACTORIES)),
    pre_switch_us=st.integers(2, 40),
)
@settings(max_examples=12, deadline=None)
def test_switch_preserves_stream_for_any_module_and_timing(
    kind, pre_switch_us
):
    factory = FACTORIES[kind]
    count = 3_000

    # reference: one uninterrupted module
    reference = factory()
    expected = []
    for sample in ramp(count=count):
        result = reference.process(to_u32(sample))
        if result is not None:
            expected.append(from_u32(to_u32(result)))

    # system under test: swap mid-stream at an arbitrary moment
    system = build_system(pr_speedup=2000.0)
    iom = Iom("io", source=ramp(count=count))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(factory(), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.register_module("successor", lambda: staged(factory()))
    system.repository.preload_to_sdram("successor", "rsb0.prr1")
    system.run_for_us(pre_switch_us)
    report = system.microblaze.run_to_completion(
        ModuleSwitcher(system).switch(
            old_prr="rsb0.prr0",
            new_prr="rsb0.prr1",
            new_module="successor",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        ),
        "switch",
    )
    system.run_for_us(80)

    assert report.words_lost == 0
    assert iom.received == expected[: len(iom.received)]
    # essentially everything arrived (variable-rate modules emit fewer)
    assert len(iom.received) >= len(expected) - 10
