"""Property tests: streaming channels never lose, duplicate or reorder
words regardless of pipeline depth, FIFO sizing or consumer pacing.

This is the invariant behind the paper's 2*d feedback-full threshold
(Section III.B): the consumer FIFO always has room for the words already
in flight when back-pressure asserts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.channel import StreamingChannel
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.comm.switchbox import MODULE_OUT, RIGHT, LaneRef


def build_channel(d, depth):
    producer = ProducerInterface("p", depth=max(depth, 4))
    consumer = ConsumerInterface("c", depth=depth)
    producer.fifo_ren = True
    consumer.fifo_wen = True
    hops = [LaneRef(i, RIGHT, 0) for i in range(d - 1)]
    hops.append(LaneRef(max(0, d - 1), MODULE_OUT, 0))
    return StreamingChannel(0, producer, consumer, hops), producer, consumer


@given(
    d=st.integers(1, 8),
    # consumer FIFO must hold the in-flight window: depth > 2*d
    extra_depth=st.integers(1, 32),
    word_count=st.integers(1, 150),
    drain_period=st.integers(1, 7),
    seed=st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_channel_lossless_in_order_any_pacing(
    d, extra_depth, word_count, drain_period, seed
):
    depth = 2 * d + extra_depth
    channel, producer, consumer = build_channel(d, depth)
    sent = 0
    received = []
    for cycle in range(word_count * (drain_period + 2) + 4 * d + 16):
        if sent < word_count and producer.module_can_write:
            producer.module_write(sent)
            sent += 1
        channel.sample()
        channel.commit()
        if cycle % drain_period == 0:
            while consumer.module_can_read and seed.random() < 0.8:
                received.append(consumer.module_read())
    while consumer.module_can_read:
        received.append(consumer.module_read())
    assert consumer.words_discarded == 0
    assert received == list(range(word_count))


@given(d=st.integers(1, 8), burst=st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_backpressure_keeps_occupancy_bounded(d, burst):
    """With no drain at all, the consumer FIFO never overflows and the
    producer eventually stops being served."""
    depth = 2 * d + 2
    channel, producer, consumer = build_channel(d, depth)
    for value in range(burst):
        producer.module_write(value)
    for _ in range(burst + 10 * d + 20):
        channel.sample()
        channel.commit()
    assert consumer.words_discarded == 0
    assert len(consumer.fifo) <= depth


@given(d=st.integers(1, 8), inflight=st.integers(0, 8))
@settings(max_examples=40, deadline=None)
def test_release_accounts_for_all_words(d, inflight):
    """sent == delivered + in_flight at any instant."""
    channel, producer, consumer = build_channel(d, 64)
    for value in range(inflight):
        producer.module_write(value)
    for _ in range(inflight):
        channel.sample()
        channel.commit()
    total = producer.words_sent
    lost = channel.release()
    assert total == consumer.words_received + lost
