"""Property tests: every accepted floorplan satisfies the paper's rules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.device import DEVICES, get_device
from repro.fabric.floorplan import (
    MAX_PRR_HEIGHT,
    MAX_PRR_REGIONS,
    Floorplan,
    FloorplanError,
    auto_floorplan,
)
from repro.fabric.geometry import Rect, clock_regions_of

devices = st.sampled_from(sorted(DEVICES))


def rects(device):
    return st.builds(
        Rect,
        col=st.integers(0, device.clb_cols - 1),
        row=st.integers(0, device.clb_rows - 1),
        width=st.integers(1, device.clb_cols),
        height=st.integers(1, 64),
    )


@given(data=st.data(), device_name=devices)
@settings(max_examples=120, deadline=None)
def test_accepted_placements_always_legal(data, device_name):
    device = get_device(device_name)
    plan = Floorplan(device)
    for index in range(4):
        rect = data.draw(rects(device), label=f"rect{index}")
        try:
            plan.place_prr(f"p{index}", rect)
        except FloorplanError:
            continue
    # invariants over whatever was accepted
    seen_regions = set()
    for placement in plan.prrs.values():
        rect = placement.rect
        assert device.bounds.contains(rect)
        assert rect.height <= MAX_PRR_HEIGHT
        regions = clock_regions_of(rect, device.clb_cols)
        assert 1 <= len(regions) <= MAX_PRR_REGIONS
        assert len({r.half for r in regions}) == 1
        assert not (regions & seen_regions)
        seen_regions |= regions
    names = list(plan.prrs)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            assert not plan.prrs[a].rect.intersects(plan.prrs[b].rect)


@given(
    device_name=devices,
    count=st.integers(1, 4),
    slices=st.integers(4, 640),
    regions=st.integers(1, 3),
)
@settings(max_examples=80, deadline=None)
def test_auto_floorplan_meets_requirements_or_raises(
    device_name, count, slices, regions
):
    device = get_device(device_name)
    requirements = [(f"p{i}", slices) for i in range(count)]
    try:
        plan = auto_floorplan(device, requirements, regions_per_prr=regions)
    except FloorplanError:
        return
    assert len(plan.prrs) == count
    for placement in plan.prrs.values():
        assert placement.slices >= slices
        assert len(placement.clock_regions) <= regions
    assert plan.prr_slices + plan.static_slices_available == device.slices


@given(device_name=devices, data=st.data())
@settings(max_examples=60, deadline=None)
def test_fragmentation_never_negative(device_name, data):
    device = get_device(device_name)
    plan = auto_floorplan(device, [("p0", 640)])
    used = data.draw(st.integers(0, plan.prrs["p0"].slices))
    waste = plan.fragmentation({"p0": used})
    assert waste["p0"] == plan.prrs["p0"].slices - used
    assert waste["p0"] >= 0
