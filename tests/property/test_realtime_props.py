"""Property tests for the realtime checkpoint/restore machinery.

Two contracts carry the EDF scheduler's correctness story:

* the CMD_CHECKPOINT protocol itself -- quiesce a module mid-stream,
  read its state words off the r-FSL (closed by MSG_CKPT), restore them
  into a fresh *staged* module incarnation, and the concatenated output
  is bit-exact with an uninterrupted run (no EOS ever appears);
* the end-to-end scheduler -- a job that was suspended and resumed
  arbitrarily often under contention produces a byte-identical output
  fingerprint to the same job running alone.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.core.params import SystemParameters
from repro.modules.base import (
    CMD_CHECKPOINT,
    CMD_START,
    MSG_CKPT,
    ModulePorts,
    staged,
)
from repro.modules.filters import Q15_ONE, FirFilter, MovingAverage
from repro.modules.state import from_u32, to_u32
from repro.modules.transforms import Crc32, DeltaEncoder, MinMaxTracker
from repro.realtime.checkpoint import JobCheckpoint
from repro.realtime.edf import EdfExecutor
from repro.realtime.workloads import generate_workload
from repro.runtime.executor import ExecutorConfig
from repro.runtime.jobs import ResumeState, SourceSpec, StageSpec, StreamJob

FACTORIES = [
    lambda: FirFilter("fir", [Q15_ONE // 4, Q15_ONE // 2, Q15_ONE // 4]),
    lambda: MovingAverage("avg", window=3),
    lambda: DeltaEncoder("delta"),
    lambda: Crc32("crc"),
    lambda: MinMaxTracker("mm"),
]

samples = st.lists(st.integers(-(2**20), 2**20), min_size=1, max_size=50)


def bind(module):
    consumer = ConsumerInterface("c", depth=4096)
    producer = ProducerInterface("p", depth=4096)
    consumer.fifo_wen = True
    ports = ModulePorts(
        [consumer], [producer], FslLink("t"), FslLink("r")
    )
    module.bind(ports)
    return ports


def feed_and_settle(module, ports, words):
    for word in words:
        ports.consumers[0].receive(True, to_u32(word))
    for _ in range(len(words) * (module.cycles_per_sample + 1) + 8):
        module.commit()


def collect(ports):
    out = []
    while not ports.producers[0].fifo.empty:
        out.append(from_u32(ports.producers[0].fifo.pop()))
    return out


def checkpoint_over_fsl(module, ports):
    """Drive the CMD_CHECKPOINT drain and return the state words."""
    ports.fsl_in.master_write(CMD_CHECKPOINT, control=True)
    for _ in range(4096):
        if module.checkpoint_complete:
            break
        module.commit()
        # the harness plays MicroBlaze: keep the r-FSL drained so the
        # state push never stalls behind monitoring words
    assert module.checkpoint_complete, "checkpoint never completed"
    words = []
    while ports.fsl_out.can_read:
        data, control = ports.fsl_out.slave_read()
        if control:
            words.append(data)
    assert words and words[-1] == MSG_CKPT
    return words[:-1]


@given(
    stream=samples,
    cut=st.integers(0, 50),
    factory_index=st.integers(0, len(FACTORIES) - 1),
)
@settings(max_examples=60, deadline=None)
def test_checkpoint_protocol_roundtrip_is_bit_exact(
    stream, cut, factory_index
):
    factory = FACTORIES[factory_index]
    cut = min(cut, len(stream))

    reference = factory()
    ref_ports = bind(reference)
    feed_and_settle(reference, ref_ports, stream)
    expected = collect(ref_ports)

    first = factory()
    first_ports = bind(first)
    feed_and_settle(first, first_ports, stream[:cut])
    head = collect(first_ports)
    state = checkpoint_over_fsl(first, first_ports)
    assert first.halted and not first.flush_complete  # no EOS path

    second = staged(factory())
    second_ports = bind(second)
    # restored state arrives as pre-start FSL data words (step 7)
    for word in state:
        second_ports.fsl_in.master_write(word)
    second.commit()
    second_ports.fsl_in.master_write(CMD_START, control=True)
    feed_and_settle(second, second_ports, stream[cut:])
    tail = collect(second_ports)

    assert head + tail == expected


@given(
    stage_states=st.lists(
        st.lists(st.integers(0, 2**32 - 1), max_size=4),
        min_size=1, max_size=3,
    ),
    offset=st.integers(0, 2**20),
    capture_us=st.floats(0, 1e6, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_job_checkpoint_resume_roundtrip(stage_states, offset, capture_us):
    spec = StreamJob(
        name="j",
        stages=[StageSpec(kind="moving_average")] * len(stage_states),
        source=SourceSpec(kind="ramp", count=8),
    )
    resume = ResumeState(
        stage_states=stage_states, source_offset=offset,
        capture_us=capture_us,
    )
    ckpt = JobCheckpoint.from_resume(
        spec, resume, prrs=[f"p{i}" for i in range(len(stage_states))],
        slices_needed=640,
    )
    wire = JobCheckpoint.from_dict(ckpt.to_dict())
    back = wire.to_resume()
    assert back.stage_states == stage_states
    assert back.source_offset == offset
    assert back.capture_us == capture_us


@given(seed=st.sampled_from([3, 11]))
@settings(max_examples=2, deadline=None)
def test_preempted_fingerprint_equals_solo_run(seed):
    """A suspended/resumed job's output stream is indistinguishable."""
    params = replace(SystemParameters.prototype(), pr_speedup=20_000.0)
    config = ExecutorConfig(max_us=20_000.0, quantum_us=5.0, idle_streak=2)
    jobs = generate_workload(
        seed=seed, jobs=3, utilization=0.6, params=params,
        deadline_factor=3.0, frames=3,
    )
    shared = EdfExecutor(params=params, config=config).run_realtime(jobs)
    assert shared.suspensions_total > 0
    for job, outcome in zip(jobs, shared.jobs):
        solo = EdfExecutor(params=params, config=config).run_realtime([job])
        assert solo.jobs[0].fingerprint == outcome.fingerprint
        assert solo.jobs[0].words_out == outcome.words_out
