"""Property tests: the compiled-schedule fast path is observationally
identical to the event-heap kernel.

Twin simulations (fast path on / off) run randomly generated clock sets
with random mid-run retunes, gating toggles and interloping
PRIORITY_NORMAL events; the complete callback streams -- every sample and
commit with its timestamp, plus final time, cycle counts,
``events_processed`` and the sequence counter -- must match exactly.
Coprime period sets overflow the hyperperiod table and exercise the
per-instant scan mode; harmonic sets exercise the table mode.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import Bufgmux, Clock, ClockedComponent, FixedSource
from repro.sim.kernel import Simulator

#: Pool of clock periods in ps.  Mixes harmonic values (table mode) with
#: primes (scan-mode fallback via huge hyperperiods).
PERIOD_POOL = [
    10_000, 20_000, 40_000, 7_000, 13_000, 9_973, 12_500, 30_303, 5_000,
]

PS = 1_000_000_000_000


class Recorder(ClockedComponent):
    def __init__(self, log, sim, name):
        self.log = log
        self.sim = sim
        self.name = name

    def sample(self):
        self.log.append((self.sim.now, "s", self.name))

    def commit(self):
        self.log.append((self.sim.now, "c", self.name))


def build(periods, retunes, gates, noise, fastpath):
    """One sim wired with the generated clock set and scheduled actions.

    ``retunes``: (time, sel) pairs applied to a BUFGMUX-fed extra clock.
    ``gates``: (time, clock_index, enabled) toggles.
    ``noise``: times at which a do-nothing PRIORITY_NORMAL event fires.
    """
    sim = Simulator(use_fastpath=fastpath)
    log = []
    clocks = []
    for i, period in enumerate(periods):
        clk = Clock(sim, freq_hz=PS / period, name=f"clk{i}")
        clk.attach(Recorder(log, sim, f"clk{i}"))
        clk.start()
        clocks.append(clk)
    mux = Bufgmux(FixedSource(PS / periods[0]), FixedSource(PS / 17_000))
    lcd = Clock(sim, source=mux, name="lcd")
    lcd.attach(Recorder(log, sim, "lcd"))
    lcd.start()
    clocks.append(lcd)
    for time, sel in retunes:
        sim.schedule_at(time, lambda sel=sel: mux.select(sel))
    for time, index, enabled in gates:
        clk = clocks[index % len(clocks)]
        sim.schedule_at(
            time, lambda clk=clk, e=enabled: clk.set_enabled(e)
        )
    for time in noise:
        sim.schedule_at(time, lambda: log.append((sim.now, "n", "noise")))
    return sim, clocks, log


@given(
    periods=st.lists(st.sampled_from(PERIOD_POOL), min_size=1, max_size=3),
    retunes=st.lists(
        st.tuples(st.integers(1, 400_000), st.integers(0, 1)), max_size=3
    ),
    gates=st.lists(
        st.tuples(
            st.integers(1, 400_000), st.integers(0, 3), st.booleans()
        ),
        max_size=4,
    ),
    noise=st.lists(st.integers(1, 400_000), max_size=4),
    horizon=st.integers(50_000, 500_000),
)
@settings(max_examples=40, deadline=None)
def test_fastpath_heap_equivalence(periods, retunes, gates, noise, horizon):
    sim_h, clocks_h, log_h = build(periods, retunes, gates, noise, False)
    sim_f, clocks_f, log_f = build(periods, retunes, gates, noise, True)
    sim_h.run_until(horizon)
    sim_f.run_until(horizon)
    assert log_f == log_h
    assert sim_f.now == sim_h.now
    assert sim_f.events_processed == sim_h.events_processed
    assert [c.cycles for c in clocks_f] == [c.cycles for c in clocks_h]
    # the sequence counter must agree too: scheduling parity means a
    # heap-mode continuation of either sim stays identical
    assert (
        sim_f.schedule(0, lambda: None).seq
        == sim_h.schedule(0, lambda: None).seq
    )


@given(
    periods=st.lists(st.sampled_from(PERIOD_POOL), min_size=1, max_size=3),
    horizon=st.integers(50_000, 400_000),
    resume=st.integers(50_000, 400_000),
)
@settings(max_examples=20, deadline=None)
def test_fastpath_resumes_identically_after_window(periods, horizon, resume):
    """Two run_until calls (window split) never change the stream."""
    sim_h, clocks_h, log_h = build(periods, [], [], [], False)
    sim_f, clocks_f, log_f = build(periods, [], [], [], True)
    sim_h.run_until(horizon)
    sim_h.run_until(horizon + resume)
    sim_f.run_until(horizon)
    sim_f.run_until(horizon + resume)
    assert log_f == log_h
    assert sim_f.events_processed == sim_h.events_processed
    assert [c.cycles for c in clocks_f] == [c.cycles for c in clocks_h]
