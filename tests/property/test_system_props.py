"""Property tests: system-level invariants.

* determinism: identical scenarios produce identical traces and outputs;
* random KPN pipelines assemble and deliver every word;
* resource estimates are monotone in every architectural parameter.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RsbParameters, SystemParameters
from repro.core.assembly import RuntimeAssembler
from repro.core.kpn import KahnProcessNetwork
from repro.flows.estimate import comm_architecture_slices, static_region_resources
from repro.modules import Iom
from repro.modules.filters import Q15_ONE, FirFilter, MovingAverage
from repro.modules.sources import ramp
from repro.modules.transforms import Crc32, DeltaEncoder, PassThrough

from tests.helpers import build_system

STAGE_FACTORIES = [
    lambda n: PassThrough(n),
    lambda n: MovingAverage(n, window=2),
    lambda n: DeltaEncoder(n),
    lambda n: Crc32(n),
    lambda n: FirFilter(n, [Q15_ONE]),
]


def run_scenario(module_index, count):
    system = build_system()
    iom = Iom("io", source=ramp(count=count))
    system.attach_iom("rsb0.iom0", iom)
    module = STAGE_FACTORIES[module_index]("m")
    system.place_module_directly(module, "rsb0.prr0")
    system.open_stream("rsb0.iom0", "rsb0.prr0")
    system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.run_for_cycles(count * 3 + 100)
    trace = [(e.time, e.category, e.message) for e in system.sim.trace]
    return list(iom.received), trace, system.sim.events_processed


@given(
    module_index=st.integers(0, len(STAGE_FACTORIES) - 1),
    count=st.integers(1, 120),
)
@settings(max_examples=15, deadline=None)
def test_simulation_is_deterministic(module_index, count):
    first = run_scenario(module_index, count)
    second = run_scenario(module_index, count)
    assert first == second


@given(
    data=st.data(),
    stages=st.integers(1, 2),
    count=st.integers(1, 150),
)
@settings(max_examples=20, deadline=None)
def test_random_pipelines_deliver_every_word(data, stages, count):
    system = build_system()
    iom = Iom("io", source=ramp(count=count))
    system.attach_iom("rsb0.iom0", iom)
    kpn = KahnProcessNetwork("random-pipe")
    kpn.add_iom("io")
    previous = "io"
    for index in range(stages):
        factory_index = data.draw(
            st.integers(0, len(STAGE_FACTORIES) - 1), label=f"stage{index}"
        )
        name = f"s{index}"
        kpn.add_module(
            name,
            lambda n=name, f=factory_index: STAGE_FACTORIES[f](n),
        )
        kpn.connect(previous, name)
        previous = name
    kpn.connect(previous, "io")
    app = RuntimeAssembler(system).assemble(kpn)
    system.run_for_cycles(count * (stages + 2) * 3 + 200)
    # every fixed-rate stage forwards every word (all library stages here
    # are rate-1); nothing may be discarded anywhere
    assert len(iom.received) == count
    discards = [
        c.words_discarded
        for slot in system.rsbs[0].slots
        for c in slot.consumers
    ]
    assert sum(discards) == 0
    assert app.teardown() == 0


@given(
    kr=st.integers(1, 4),
    width=st.sampled_from([8, 16, 32, 64]),
    prrs=st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_resource_estimates_monotone(kr, width, prrs):
    base = RsbParameters(
        num_prrs=prrs, num_ioms=1, iom_positions=[0],
        kr=kr, kl=kr, channel_width=width,
    )
    bigger_lanes = RsbParameters(
        num_prrs=prrs, num_ioms=1, iom_positions=[0],
        kr=kr + 1, kl=kr + 1, channel_width=width,
    )
    wider = RsbParameters(
        num_prrs=prrs, num_ioms=1, iom_positions=[0],
        kr=kr, kl=kr, channel_width=width * 2,
    )
    assert comm_architecture_slices(bigger_lanes) > comm_architecture_slices(base)
    assert comm_architecture_slices(wider) > comm_architecture_slices(base)
    params_small = SystemParameters(rsbs=[base])
    params_more_prrs = SystemParameters(
        rsbs=[
            RsbParameters(
                num_prrs=prrs + 1, num_ioms=1, iom_positions=[0],
                kr=kr, kl=kr, channel_width=width,
            )
        ]
    )
    assert (
        static_region_resources(params_more_prrs).slices
        > static_region_resources(params_small).slices
    )
