"""Property tests: FIFOs against a reference deque model."""

from collections import deque

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.fifo import AsyncFifo, SyncFifo

ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 2**32 - 1)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=200,
)


@given(capacity=st.integers(1, 64), operations=ops)
def test_sync_fifo_matches_reference_model(capacity, operations):
    fifo = SyncFifo(capacity)
    model = deque()
    drops = 0
    for op, value in operations:
        if op == "push":
            accepted = fifo.push(value)
            if len(model) < capacity:
                assert accepted
                model.append(value)
            else:
                assert not accepted
                drops += 1
        else:
            if model:
                assert fifo.pop() == model.popleft()
            else:
                assert fifo.empty
        assert len(fifo) == len(model)
        assert fifo.empty == (not model)
        assert fifo.full == (len(model) == capacity)
        assert fifo.drops == drops


@given(
    capacity=st.integers(1, 64),
    slack=st.integers(0, 64),
    pushes=st.integers(0, 64),
)
def test_almost_full_is_remaining_space_threshold(capacity, slack, pushes):
    fifo = SyncFifo(capacity, almost_full_slack=slack)
    for value in range(min(pushes, capacity)):
        fifo.push(value)
    assert fifo.almost_full == (fifo.remaining <= slack)


@given(
    words=st.lists(st.integers(0, 2**32 - 1), max_size=100),
    capacity=st.integers(1, 128),
)
def test_fifo_preserves_order_and_content(words, capacity):
    fifo = SyncFifo(capacity)
    accepted = [w for w in words if fifo.push(w)]
    assert fifo.drain() == accepted
    assert accepted == words[: min(len(words), capacity)]


@given(
    words=st.lists(st.integers(0, 255), min_size=1, max_size=50),
    sync_stages=st.integers(0, 4),
)
def test_async_fifo_sync_empty_never_shows_phantom_data(words, sync_stages):
    """sync_empty may lag reality but never claims data that isn't there."""
    fifo = AsyncFifo(256, sync_stages=sync_stages)
    for word in words:
        fifo.push(word)
        if not fifo.sync_empty:
            assert not fifo.empty
        fifo.reader_tick()
    # after enough reader cycles every word becomes visible
    for _ in range(sync_stages + 1):
        fifo.reader_tick()
    assert not fifo.sync_empty
    assert fifo.drain() == words
