"""Property tests: kernel event ordering and clock arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import Clock, FixedSource
from repro.sim.kernel import (
    PRIORITY_COMMIT,
    PRIORITY_NORMAL,
    PRIORITY_SAMPLE,
    Simulator,
    freq_hz_to_period_ps,
)


@given(
    schedule=st.lists(
        st.tuples(
            st.integers(0, 10_000),
            st.sampled_from([PRIORITY_SAMPLE, PRIORITY_COMMIT, PRIORITY_NORMAL]),
        ),
        max_size=80,
    )
)
@settings(max_examples=100, deadline=None)
def test_events_fire_in_time_then_priority_then_fifo_order(schedule):
    sim = Simulator()
    fired = []
    for index, (delay, priority) in enumerate(schedule):
        sim.schedule(
            delay,
            lambda d=delay, p=priority, i=index: fired.append((d, p, i)),
            priority=priority,
        )
    sim.run()
    assert fired == sorted(fired)


@given(freq=st.floats(1e3, 1e9, allow_nan=False, allow_infinity=False))
def test_period_positive_and_monotone(freq):
    period = freq_hz_to_period_ps(freq)
    assert period >= 1
    assert freq_hz_to_period_ps(freq / 2) >= period


@given(
    freq_mhz=st.integers(1, 400),
    run_periods=st.integers(0, 200),
)
@settings(max_examples=60, deadline=None)
def test_clock_cycle_count_matches_elapsed_time(freq_mhz, run_periods):
    sim = Simulator()
    clock = Clock(sim, source=FixedSource(freq_mhz * 1e6))
    clock.start()
    sim.run_for(run_periods * clock.period_ps)
    assert clock.cycles == run_periods


@given(
    gate_at=st.integers(0, 50),
    gated_for=st.integers(0, 50),
    after=st.integers(0, 50),
)
@settings(max_examples=60, deadline=None)
def test_gating_loses_exactly_the_gated_cycles(gate_at, gated_for, after):
    sim = Simulator()
    clock = Clock(sim, freq_hz=100e6)
    clock.start()
    period = clock.period_ps
    sim.run_for(gate_at * period)
    clock.set_enabled(False)
    sim.run_for(gated_for * period)
    clock.set_enabled(True)
    sim.run_for(after * period)
    assert clock.cycles == gate_at + after
