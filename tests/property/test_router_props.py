"""Property tests: router allocation invariants under random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.channel import SwitchFabric
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.comm.router import ChannelRouter
from repro.comm.switchbox import LEFT, MODULE_OUT, RIGHT, SwitchBox


def build(n, kr, kl):
    boxes = [SwitchBox(i, kr, kl, 1, 1) for i in range(n)]
    return ChannelRouter(boxes, SwitchFabric()), boxes


def endpoints():
    return ProducerInterface("p"), ConsumerInterface("c")


requests = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans()),
    max_size=40,
)


@given(
    n=st.integers(2, 6),
    kr=st.integers(1, 3),
    kl=st.integers(1, 3),
    reqs=requests,
)
@settings(max_examples=80, deadline=None)
def test_establish_succeeds_iff_comm_state_says_so(n, kr, kl, reqs):
    """`can_route` on a fresh snapshot exactly predicts establishment."""
    router, boxes = build(n, kr, kl)
    live = []
    for src, dst, release_one in reqs:
        src %= n
        dst %= n
        predicted = router.comm_state().can_route(src, dst)
        channel = router.try_establish(src, dst, *endpoints())
        assert (channel is not None) == predicted
        if channel is not None:
            live.append(channel)
        if release_one and live:
            router.release(live.pop(0))


@given(
    n=st.integers(2, 6),
    kr=st.integers(1, 3),
    kl=st.integers(1, 3),
    reqs=requests,
)
@settings(max_examples=80, deadline=None)
def test_lane_ownership_is_exclusive_and_conserved(n, kr, kl, reqs):
    router, boxes = build(n, kr, kl)
    live = []
    for src, dst, release_one in reqs:
        channel = router.try_establish(src % n, dst % n, *endpoints())
        if channel is not None:
            live.append(channel)
        if release_one and live:
            router.release(live.pop())
        # every owned lane belongs to exactly one live channel
        owned = {}
        for box in boxes:
            for direction in (RIGHT, LEFT, MODULE_OUT):
                limit = {RIGHT: box.kr, LEFT: box.kl, MODULE_OUT: box.ki}[
                    direction
                ]
                for lane in range(limit):
                    owner = box.owner_of(direction, lane)
                    if owner is not None:
                        owned.setdefault(owner, []).append(
                            (box.index, direction, lane)
                        )
        live_ids = {c.channel_id for c in live}
        assert set(owned) == live_ids
        for channel in live:
            hop_keys = {(h.box, h.direction, h.lane) for h in channel.hops}
            assert hop_keys == set(owned[channel.channel_id])


@given(n=st.integers(2, 6), reqs=requests)
@settings(max_examples=60, deadline=None)
def test_release_everything_restores_full_capacity(n, reqs):
    router, boxes = build(n, 2, 2)
    live = []
    for src, dst, _ in reqs:
        channel = router.try_establish(src % n, dst % n, *endpoints())
        if channel is not None:
            live.append(channel)
    for channel in live:
        router.release(channel)
    state = router.comm_state()
    assert state.free_right == [2] * n
    assert state.free_left == [2] * n
    assert state.free_module_out == [1] * n
    assert all(box.utilization() == 0.0 for box in boxes)


@given(n=st.integers(2, 6), src=st.integers(0, 5), dst=st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_path_shape_is_minimal(n, src, dst):
    """Paths use exactly |src-dst| directional hops plus one module-out."""
    router, _ = build(n, 3, 3)
    src %= n
    dst %= n
    channel = router.establish(src, dst, *endpoints())
    assert channel.d == abs(src - dst) + 1
    assert channel.hops[-1].direction == MODULE_OUT
    directional = channel.hops[:-1]
    expected_direction = RIGHT if src < dst else LEFT
    assert all(h.direction == expected_direction for h in directional)
    assert [h.box for h in channel.hops[:-1]] == (
        list(range(src, dst)) if src < dst else list(range(src, dst, -1))
    )
