"""Property tests: fixed-point numeric safety.

Hardware datapaths saturate rather than wrap; every module's output must
stay inside the signed 32-bit range for *any* input stream, including the
extremes, and outputs must be deterministic functions of the input.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.modules.base import ModulePorts
from repro.modules.conditioning import AbsValue, Accumulator, PeakHold
from repro.modules.filters import Q15_ONE, BiquadIir, FirFilter, MovingAverage, q15
from repro.modules.state import INT32_MAX, INT32_MIN, from_u32, to_u32
from repro.modules.transforms import DeltaDecoder, DeltaEncoder, Scaler

extreme_samples = st.lists(
    st.one_of(
        st.integers(INT32_MIN, INT32_MAX),
        st.sampled_from([INT32_MIN, INT32_MAX, 0, -1, 1]),
    ),
    min_size=1,
    max_size=40,
)

FACTORIES = [
    lambda: FirFilter("m", [Q15_ONE, Q15_ONE, Q15_ONE]),  # gain 3: overflows
    lambda: FirFilter("m", [q15(-0.9), q15(0.9)]),
    lambda: BiquadIir("m", [Q15_ONE, Q15_ONE, Q15_ONE], [q15(-0.9), q15(0.8)]),
    lambda: MovingAverage("m", window=4),
    lambda: Scaler("m", gain=q15(1.99)),
    lambda: DeltaEncoder("m"),
    lambda: DeltaDecoder("m"),
    lambda: AbsValue("m"),
    lambda: PeakHold("m", decay_shift=2),
    lambda: Accumulator("m", window=3),
]


def run(module, stream):
    consumer = ConsumerInterface("c", depth=4096)
    producer = ProducerInterface("p", depth=4096)
    consumer.fifo_wen = True
    module.bind(ModulePorts([consumer], [producer], FslLink("t"), FslLink("r")))
    for sample in stream:
        consumer.receive(True, to_u32(sample))
    for _ in range(len(stream) * (module.cycles_per_sample + 1) + 8):
        module.commit()
    out = []
    while not producer.fifo.empty:
        out.append(from_u32(producer.fifo.pop()))
    return out


@given(
    stream=extreme_samples,
    factory_index=st.integers(0, len(FACTORIES) - 1),
)
@settings(max_examples=150, deadline=None)
def test_outputs_always_in_int32_range(stream, factory_index):
    outputs = run(FACTORIES[factory_index](), stream)
    for value in outputs:
        assert INT32_MIN <= value <= INT32_MAX


@given(
    stream=extreme_samples,
    factory_index=st.integers(0, len(FACTORIES) - 1),
)
@settings(max_examples=60, deadline=None)
def test_processing_is_deterministic(stream, factory_index):
    first = run(FACTORIES[factory_index](), stream)
    second = run(FACTORIES[factory_index](), stream)
    assert first == second


@given(stream=extreme_samples)
@settings(max_examples=60, deadline=None)
def test_delta_codec_roundtrip_saturates_but_recovers_in_range(stream):
    """Encoder deltas can saturate; the decoder's output still never
    leaves the int32 range (no Python-int leakage through the wire)."""
    encoded = run(DeltaEncoder("e"), stream)
    decoded = run(DeltaDecoder("d"), encoded)
    for value in decoded:
        assert INT32_MIN <= value <= INT32_MAX
    # where no saturation occurred, the codec is exact
    if all(abs(a) < 2**29 for a in stream):
        assert decoded == stream
