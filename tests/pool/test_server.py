"""End-to-end asyncio tests of the NDJSON front door.

Server and client share one event loop (real sockets on loopback,
ephemeral ports); device workers run inline except for one
cross-mode smoke test against real processes.
"""

import asyncio
import itertools
import json
from dataclasses import replace

from repro.core.params import SystemParameters
from repro.pool import (
    DevicePool,
    PoolClient,
    PoolServer,
    get_json,
    request_shutdown,
    run_jobs,
)
from repro.runtime import ExecutorConfig
from repro.runtime.jobs import SourceSpec, StageSpec, StreamJob

FAST = replace(SystemParameters.prototype(), pr_speedup=20_000.0)
CONFIG = ExecutorConfig(quantum_us=5.0, idle_streak=1, max_us=100_000.0)


def tiny_job(name, count=8):
    return StreamJob(
        name=name,
        stages=[StageSpec("passthrough")],
        source=SourceSpec("ramp", count=count),
    )


async def start_server(devices=2, clock=None, use_processes=False):
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    pool = DevicePool(
        devices=devices, params=FAST, config=CONFIG,
        use_processes=use_processes, **kwargs,
    )
    server = PoolServer(pool, "127.0.0.1", 0)
    await server.start()
    return server


# ----------------------------------------------------------------------
def test_round_trip_with_fake_clock():
    ticks = itertools.count(start=7000.0, step=0.25)

    async def scenario():
        server = await start_server(clock=lambda: next(ticks))
        events = []
        summary = await run_jobs(
            server.host, server.port,
            [tiny_job(f"rt{i}") for i in range(6)],
            tenant="alpha", on_event=events.append,
        )
        await server.aclose()
        return summary, events

    summary, events = asyncio.run(scenario())
    assert summary["ok"]
    assert summary["jobs"] == 6
    assert summary["states"] == {"done": 6}
    assert summary["words_lost"] == 0
    kinds = {e["event"] for e in events}
    assert {"submitted", "placed", "bound", "running", "first_sample",
            "done", "batch_done"} <= kinds
    # every event timestamp came from the injected clock
    stamped = [e["t"] for e in events if "t" in e]
    assert stamped and all(t >= 7000.0 and (t * 4) == int(t * 4)
                           for t in stamped)
    for e in events:
        if e["event"] == "first_sample":
            assert e["latency_s"] > 0


def test_tenant_isolation_on_concurrent_connections():
    async def scenario():
        server = await start_server()
        ev_a, ev_b = [], []
        sum_a, sum_b = await asyncio.gather(
            run_jobs(server.host, server.port,
                     [tiny_job(f"a{i}") for i in range(4)],
                     tenant="alpha", on_event=ev_a.append),
            run_jobs(server.host, server.port,
                     [tiny_job(f"b{i}") for i in range(4)],
                     tenant="beta", on_event=ev_b.append),
        )
        await server.aclose()
        return sum_a, sum_b, ev_a, ev_b

    sum_a, sum_b, ev_a, ev_b = asyncio.run(scenario())
    assert sum_a["ok"] and sum_b["ok"]
    # each connection saw only its own jobs' lifecycle events
    assert {e["job"] for e in ev_a if e.get("tenant")} == {
        f"a{i}" for i in range(4)
    }
    assert {e["job"] for e in ev_b if e.get("tenant")} == {
        f"b{i}" for i in range(4)
    }
    assert all(e["tenant"] == "alpha" for e in ev_a if e.get("tenant"))
    assert all(e["tenant"] == "beta" for e in ev_b if e.get("tenant"))


def test_health_stats_and_metrics_endpoints():
    from repro.pool import ClientError

    async def scenario():
        server = await start_server()
        try:
            health = await get_json(server.host, server.port, "/healthz")
            stats = await get_json(server.host, server.port, "/stats")
            # /metrics is text, fetch raw
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(
                b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            try:
                await get_json(server.host, server.port, "/nope")
                not_found = None
            except ClientError as exc:
                not_found = str(exc)
            return health, stats, raw.decode(), not_found
        finally:
            await server.aclose()

    health, stats, metrics, not_found = asyncio.run(scenario())
    assert health["ok"] and health["devices"] == 2
    assert len(stats["devices"]) == 2
    assert "repro_pool_overcommit_pressure" in metrics
    assert not_found is not None and "404" in not_found


def test_malformed_submissions_are_rejected_not_fatal():
    async def scenario():
        server = await start_server()
        client = PoolClient(server.host, server.port)
        await client.open()
        client._writer.write(b"this is not json\n")
        client._writer.write(
            (json.dumps({"job": {"stages": ["passthrough"]}}) + "\n")
            .encode()
        )  # no name
        await client.submit(tiny_job("good"))
        await client.submit(tiny_job("good"))  # duplicate active name
        await client.finish_submissions()
        events = [e async for e in client.events()]
        await client.close()
        await server.aclose()
        return events

    events = asyncio.run(scenario())
    rejects = [e for e in events if e["event"] == "reject"]
    assert len(rejects) == 3
    assert any("bad JSON" in e["error"] for e in rejects)
    assert any("name" in e["error"] for e in rejects)
    assert any("already active" in e["error"] for e in rejects)
    done = [e for e in events if e["event"] == "batch_done"]
    assert done and done[0]["jobs"] == 1 and done[0]["ok"]


def test_shutdown_endpoint_drains_gracefully():
    async def scenario():
        server = await start_server()
        run_task = asyncio.get_running_loop().create_task(
            server.run_until_shutdown()
        )
        summary = await run_jobs(
            server.host, server.port,
            [tiny_job(f"sd{i}") for i in range(4)],
        )
        await request_shutdown(server.host, server.port)
        await asyncio.wait_for(run_task, timeout=30)
        return summary, server.pool

    summary, pool = asyncio.run(scenario())
    assert summary["ok"]
    assert pool.strict_ok
    assert pool.stats()["draining"]


def test_process_workers_match_inline_results():
    """One cross-mode check: the multiprocessing bridge returns the
    same reports as inline threads."""
    specs = [tiny_job(f"xm{i}", count=6) for i in range(4)]

    async def run_mode(use_processes):
        server = await start_server(use_processes=use_processes)
        summary = await run_jobs(server.host, server.port, specs)
        reports = {
            job.spec.name: (job.report.words_out, job.report.run_us,
                            job.report.max_gap_us, job.report.state)
            for job in server.pool._jobs.values()
        }
        await server.aclose()
        return summary, reports

    sum_proc, rep_proc = asyncio.run(run_mode(True))
    sum_inline, rep_inline = asyncio.run(run_mode(False))
    assert sum_proc["ok"] and sum_inline["ok"]
    assert rep_proc == rep_inline
