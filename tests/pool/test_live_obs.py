"""The pool's live observability plane, end to end.

Cross-bridge trace stitching (golden byte-stable steal timeline,
worker-count invariance), streaming telemetry (snapshot aggregation
into ``live_metrics``), flight-recorder dumps on loss/quarantine, and
the server's ``/events`` + ``/debug`` endpoints.
"""

import asyncio
import json
from dataclasses import replace

import pytest

from repro.core.params import SystemParameters
from repro.pool import (
    ClientError,
    DevicePool,
    PoolServer,
    post_json,
    run_jobs,
    stream_events,
)
from repro.runtime import ExecutorConfig
from repro.runtime.jobs import SourceSpec, StageSpec, StreamJob

FAST = replace(SystemParameters.prototype(), pr_speedup=20_000.0)
CONFIG = ExecutorConfig(quantum_us=5.0, idle_streak=1, max_us=100_000.0)


def tiny_job(name, stages=1, count=8):
    return StreamJob(
        name=name,
        stages=[StageSpec("passthrough") for _ in range(stages)],
        source=SourceSpec("ramp", count=count),
    )


def make_pool(devices=2, **kwargs):
    kwargs.setdefault("params", FAST)
    kwargs.setdefault("config", CONFIG)
    kwargs.setdefault("use_processes", False)
    return DevicePool(devices=devices, **kwargs)


async def run_pool(specs, devices=2, pool_kwargs=None, mid_run=None):
    pool = make_pool(devices=devices, **(pool_kwargs or {}))
    await pool.start()
    jobs = [pool.submit(spec) for spec in specs]
    if mid_run is not None:
        await mid_run(pool)
    await pool.drain()
    await pool.stop(drain=False)
    return pool, jobs


def stitched_bytes(pool):
    return json.dumps(
        pool.stitched_trace(), sort_keys=True, separators=(",", ":")
    )


def trace_shape(trace):
    """Per-(process, thread) event-kind sequences, wall stamps dropped.

    The invariant the stitcher guarantees: the *sequence* of events on
    each (trace, track) is placement-independent even though timestamps
    and device attrs are not.
    """
    processes, threads = {}, {}
    for r in trace["traceEvents"]:
        if r.get("ph") != "M":
            continue
        if r["name"] == "process_name":
            processes[r["pid"]] = r["args"]["name"]
        elif r["name"] == "thread_name":
            threads[(r["pid"], r["tid"])] = r["args"]["name"]
    shape = {}
    for r in trace["traceEvents"]:
        if r.get("ph") == "M":
            continue
        key = (processes[r["pid"]], threads[(r["pid"], r["tid"])])
        shape.setdefault(key, []).append((r["ph"], r["name"]))
    return shape


# ----------------------------------------------------------------------
# tentpole layer 1: cross-process trace stitching
# ----------------------------------------------------------------------
def steal_scenario_trace():
    """The gated-steal scenario from test_pool, under a constant clock.

    Holding device 0's bridge dispatches forces a deterministic steal;
    the constant clock zeroes every pool-side timestamp, so the
    stitched trace must come out byte-identical run over run.

    Six jobs exactly: placement levels them 3/3, each device binds two
    onto its two physical PRRs, leaving device 0 with precisely ONE
    queued-unbound (stealable) job while its dispatches are held.  A
    larger batch would leave several stealable jobs and the steal
    *count* would race against the gate-opening poll below — the
    logical history, not just the timestamps, must be deterministic for
    the byte-equality assertion to hold.
    """
    specs = [tiny_job(f"s{i}", count=6) for i in range(6)]

    async def scenario():
        pool = make_pool(devices=2, clock=lambda: 0.0)
        await pool.start()
        held, gate_open = [], False
        real_submit = pool.bridge.submit

        def gated_submit(worker_id, job_id, spec, ctx=None):
            if worker_id == 0 and not gate_open:
                held.append((worker_id, job_id, spec, ctx))
            else:
                real_submit(worker_id, job_id, spec, ctx)

        pool.bridge.submit = gated_submit
        jobs = [pool.submit(spec) for spec in specs]
        for _ in range(2000):
            if pool.steals_total > 0:
                break
            await asyncio.sleep(0.005)
        gate_open = True
        for args in held:
            real_submit(*args)
        await pool.drain()
        await pool.stop(drain=False)
        return pool, jobs

    return asyncio.run(scenario())


def test_stolen_job_stitches_into_one_byte_stable_timeline():
    pool_a, jobs_a = steal_scenario_trace()
    pool_b, jobs_b = steal_scenario_trace()
    assert pool_a.steals_total == 1 and pool_b.steals_total == 1
    assert stitched_bytes(pool_a) == stitched_bytes(pool_b)

    stolen = next(j for j in jobs_a if j.steals > 0)
    trace = pool_a.stitched_trace()
    shape = trace_shape(trace)
    label = f"trace:{stolen.trace_id}"
    pool_track = shape[(label, f"job/{stolen.spec.name}/pool")]
    # admission span brackets the steal instant; execute follows
    assert ("B", "admission") in pool_track
    assert ("i", "stolen") in pool_track
    assert pool_track.index(("B", "admission")) < pool_track.index(
        ("i", "stolen")
    ) < pool_track.index(("E", "admission"))
    assert ("B", "execute") in pool_track and ("i", "done") in pool_track
    # the device-side shard landed in the same trace (other tracks)
    device_tracks = [
        t for (p, t) in shape if p == label and not t.endswith("/pool")
    ]
    assert device_tracks, "final snapshot shard missing from the trace"
    # steal provenance survives stitching
    steal = next(
        r for r in trace["traceEvents"]
        if r.get("name") == "stolen" and r.get("ph") == "i"
    )
    assert steal["args"]["source"] == 0 and steal["args"]["target"] == 1
    assert steal["args"]["trace_id"] == stolen.trace_id


def test_trace_shape_is_invariant_across_worker_counts():
    specs = [tiny_job(f"inv{i}", count=6) for i in range(8)]
    pool1, jobs1 = asyncio.run(run_pool(specs, devices=1))
    pool4, jobs4 = asyncio.run(run_pool(specs, devices=4))
    assert all(j.state == "done" for j in jobs1 + jobs4)
    shape1 = trace_shape(pool1.stitched_trace())
    shape4 = trace_shape(pool4.stitched_trace())
    assert shape1 == shape4
    # and it is a real trace: one process per job, pool + device tracks
    labels = {p for (p, _t) in shape1}
    assert labels == {f"trace:{j.trace_id}" for j in jobs1}
    assert len({t for (_p, t) in shape1}) > len(labels)  # device tracks


# ----------------------------------------------------------------------
# tentpole layer 2: streaming telemetry
# ----------------------------------------------------------------------
def test_periodic_snapshots_feed_live_metrics():
    specs = [tiny_job(f"lv{i}", count=48) for i in range(4)]

    async def watch(pool):
        for _ in range(2000):
            if pool.aggregator.snapshots > 0:
                break
            await asyncio.sleep(0.005)
        assert pool.aggregator.snapshots > 0

    pool, jobs = asyncio.run(run_pool(
        specs, devices=2,
        pool_kwargs={"snapshot_every_quanta": 1}, mid_run=watch,
    ))
    assert all(j.state == "done" for j in jobs)
    agg = pool.aggregator
    # one final per job, plus periodic snapshots in between
    assert agg.finals == len(jobs)
    assert agg.snapshots > agg.finals
    assert agg.live_devices() == []  # nothing in flight after drain
    assert pool.snapshots_total == agg.snapshots

    live = pool.live_metrics()
    # pool-side families (base registry)
    assert live.value(
        "repro_pool_jobs_completed_total", {"tenant": "default"}
    ) == len(jobs)
    assert live.value("repro_pool_snapshots_total") == agg.snapshots
    # device-side families only snapshots can deliver: the executor
    # binds unlabelled fragmentation gauges inside each worker
    assert live.get("repro_prr_free_total") is not None
    # the merge didn't leak device registries into the base
    assert pool.metrics.get("repro_prr_free_total") is None

    stats = pool.stats()["live"]
    assert stats["snapshots"] == agg.snapshots
    assert stats["live_devices"] == []
    assert stats["flight_dumps"] == 0
    assert stats["trace_events"] > 0


def test_latency_histograms_count_every_job():
    specs = [tiny_job(f"h{i}") for i in range(5)]
    pool, jobs = asyncio.run(run_pool(specs, devices=2))
    labels = {"tenant": "default"}
    for family in (
        "repro_pool_queue_seconds",
        "repro_pool_admission_wait_seconds",
        "repro_pool_exec_seconds",
    ):
        hist = pool.metrics.get(family, labels)
        assert hist is not None, family
        assert hist.count == len(jobs), family
    assert pool.metrics.value(
        "repro_pool_jobs_submitted_total", labels
    ) == len(jobs)


# ----------------------------------------------------------------------
# tentpole layer 3: flight recorder
# ----------------------------------------------------------------------
def test_flight_dumps_on_quarantine_and_device_loss():
    async def scenario():
        pool = make_pool(devices=2)
        await pool.start()
        jobs = [pool.submit(tiny_job(f"f{i}", count=6)) for i in range(4)]
        pool.quarantine_prr(0, "rsb0.prr0")  # device 0 survives on prr1
        pool.mark_device_lost(1, reason="cable")
        await pool.drain()
        await pool.stop(drain=False)
        return pool, jobs

    pool, jobs = asyncio.run(scenario())
    assert all(j.state == "done" for j in jobs)
    reasons = [(d["device"], d["reason"]) for d in pool.flight_dumps]
    assert reasons == [(0, "quarantine:rsb0.prr0"), (1, "device_lost:cable")]
    for dump in pool.flight_dumps:
        assert dump["flightrecorder"] == 1
        assert dump["events"], "ring should hold the lifecycle leading in"
    # the loss dump recorded the device's own story, not device 0's
    loss_kinds = {e["kind"] for e in pool.flight_dumps[1]["events"]}
    assert "device_lost" in loss_kinds
    assert pool.stats()["live"]["flight_dumps"] == 2


def test_full_quarantine_dumps_once_as_device_loss():
    async def scenario():
        pool = make_pool(devices=2)
        await pool.start()
        pool.quarantine_prr(0, "rsb0.prr0")
        pool.quarantine_prr(0, "rsb0.prr1")  # second one loses the device
        await pool.stop(drain=False)
        return pool

    pool = asyncio.run(scenario())
    reasons = [d["reason"] for d in pool.flight_dumps if d["device"] == 0]
    assert reasons == ["quarantine:rsb0.prr0", "device_lost:quarantine"]


def test_flight_ring_is_bounded():
    async def scenario():
        pool = make_pool(devices=1, flight_capacity=8)
        await pool.start()
        jobs = [pool.submit(tiny_job(f"b{i}")) for i in range(6)]
        await pool.drain()
        await pool.stop(drain=False)
        return pool, jobs

    pool, jobs = asyncio.run(scenario())
    recorder = pool.flight_recorder(0)
    assert len(recorder) <= 8
    assert recorder.dropped > 0  # 6 jobs x ~6 lifecycle events >> 8


# ----------------------------------------------------------------------
# front door: /events firehose, /debug endpoints, obs_dir artifacts
# ----------------------------------------------------------------------
async def start_server(devices=2, obs_dir=None, **pool_kwargs):
    pool = make_pool(devices=devices, **pool_kwargs)
    server = PoolServer(pool, "127.0.0.1", 0, obs_dir=obs_dir)
    await server.start()
    return server


def test_events_firehose_and_debug_endpoints():
    async def scenario():
        server = await start_server(devices=2)
        host, port = server.host, server.port
        try:
            firehose = []

            async def tail():
                async for event in stream_events(host, port, limit=12):
                    firehose.append(event)

            tail_task = asyncio.get_running_loop().create_task(tail())
            await asyncio.sleep(0)  # let the firehose connect first
            summary = await run_jobs(
                host, port, [tiny_job(f"e{i}") for i in range(3)]
            )
            await asyncio.wait_for(tail_task, timeout=30)

            dumps = await post_json(host, port, "/debug/flightrecorder")
            lost = await post_json(
                host, port, "/debug/lose-device?device=1"
            )
            with pytest.raises(ClientError, match="400"):
                await post_json(host, port, "/debug/lose-device?device=no")
            with pytest.raises(ClientError, match="400"):
                await post_json(host, port, "/debug/lose-device")
            return summary, firehose, dumps, lost, server.pool
        finally:
            await server.aclose()

    summary, firehose, dumps, lost, pool = asyncio.run(scenario())
    assert summary["ok"] and summary["states"] == {"done": 3}
    # the firehose saw all tenants' lifecycle events, unfiltered
    assert len(firehose) == 12
    kinds = {e["event"] for e in firehose}
    assert "submitted" in kinds
    assert all("t" in e for e in firehose)
    # one dump per device, on demand
    assert [d["device"] for d in dumps] == [0, 1]
    assert all(d["reason"] == "request" for d in dumps)
    assert lost == {"ok": True, "device": 1, "lost": True}
    assert pool.devices[1].lost and pool.devices[1].lost_reason == "debug"


def test_live_metrics_endpoint_has_help_and_device_families():
    async def scenario():
        server = await start_server(
            devices=2, snapshot_every_quanta=1
        )
        try:
            await run_jobs(
                server.host, server.port,
                [tiny_job(f"m{i}", count=48) for i in range(4)],
                tenant="alpha",
            )
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(
                b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw.decode()
        finally:
            await server.aclose()

    metrics = asyncio.run(scenario())
    assert "# HELP repro_pool_jobs_completed_total " in metrics
    assert "# TYPE repro_pool_queue_seconds histogram" in metrics
    assert 'repro_pool_jobs_completed_total{tenant="alpha"} 4' in metrics
    # device-side family, visible only through the snapshot plane
    assert "repro_prr_free_total" in metrics
    assert "repro_pool_snapshots_total" in metrics


def test_obs_dir_artifacts_written_on_shutdown(tmp_path):
    from repro.pool import request_shutdown

    async def scenario():
        server = await start_server(devices=2, obs_dir=tmp_path / "obs")
        run_task = asyncio.get_running_loop().create_task(
            server.run_until_shutdown()
        )
        summary = await run_jobs(
            server.host, server.port,
            [tiny_job(f"a{i}") for i in range(4)],
        )
        await request_shutdown(server.host, server.port)
        await asyncio.wait_for(run_task, timeout=30)
        return summary

    summary = asyncio.run(scenario())
    assert summary["ok"]
    obs = tmp_path / "obs"
    assert (obs / "pool-trace.json").exists()
    assert (obs / "stitched-trace.json").exists()
    shards = sorted(p.name for p in obs.glob("device*-trace.json"))
    assert shards  # at least one device produced a shard
    # the committed artifacts stitch back to the same canonical trace
    from repro.obs.live import stitch_chrome_trace_files

    restitched = stitch_chrome_trace_files(
        [obs / "pool-trace.json", *sorted(obs.glob("device*-trace.json"))]
    )
    saved = json.loads((obs / "stitched-trace.json").read_text())
    labels = lambda t: sorted(  # noqa: E731
        r["args"]["name"] for r in t["traceEvents"]
        if r.get("ph") == "M" and r["name"] == "process_name"
    )
    assert labels(restitched) == labels(saved)


def test_cli_obs_stitch_merges_shards(tmp_path, capsys):
    from repro.__main__ import main
    from repro.obs import dump_chrome_trace
    from repro.obs.live import tag_events
    from repro.obs.spans import Tracer

    tracer = Tracer(time_fn=lambda: 0, wall_clock=False)
    tracer.instant("hello", track="job/a/pool")
    shard1 = dump_chrome_trace(
        tag_events(tracer.events, "aaaa0001"), tmp_path / "s1.json"
    )
    tracer2 = Tracer(time_fn=lambda: 0, wall_clock=False)
    tracer2.instant("world", track="job/b/pool")
    shard2 = dump_chrome_trace(
        tag_events(tracer2.events, "aaaa0002"), tmp_path / "s2.json"
    )
    out = tmp_path / "stitched.json"
    rc = main([
        "obs", "stitch", str(shard1), str(shard2), "--output", str(out),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "stitched 2 shard(s)" in printed
    trace = json.loads(out.read_text())
    names = sorted(
        r["args"]["name"] for r in trace["traceEvents"]
        if r.get("ph") == "M" and r["name"] == "process_name"
    )
    assert names == ["trace:aaaa0001", "trace:aaaa0002"]
