"""DevicePool behaviour: determinism, stealing, device loss, recovery.

All tests run inline workers (threads) -- the code path is identical to
process workers minus the pickling boundary, and a 1-core CI host gains
nothing from real processes (one cross-mode test lives in
test_server).
"""

import asyncio
import itertools
from dataclasses import replace

import pytest

from repro.core.params import SystemParameters
from repro.pool import DevicePool, PoolError
from repro.runtime import ExecutorConfig, FleetExecutor
from repro.runtime.jobs import SourceSpec, StageSpec, StreamJob

FAST = replace(SystemParameters.prototype(), pr_speedup=20_000.0)
CONFIG = ExecutorConfig(quantum_us=5.0, idle_streak=1, max_us=100_000.0)


def tiny_job(name, stages=1, count=8, **kwargs):
    return StreamJob(
        name=name,
        stages=[StageSpec("passthrough") for _ in range(stages)],
        source=SourceSpec("ramp", count=count),
        **kwargs,
    )


def make_pool(devices=2, **kwargs):
    kwargs.setdefault("params", FAST)
    kwargs.setdefault("config", CONFIG)
    kwargs.setdefault("use_processes", False)
    return DevicePool(devices=devices, **kwargs)


async def run_pool(specs, devices=2, pool_kwargs=None, mid_run=None):
    """Submit specs, optionally poke the pool mid-run, drain, stop."""
    pool = make_pool(devices=devices, **(pool_kwargs or {}))
    await pool.start()
    jobs = [pool.submit(spec) for spec in specs]
    if mid_run is not None:
        await mid_run(pool)
    await pool.drain()
    await pool.stop(drain=False)
    return pool, jobs


def fingerprint(job):
    """The determinism contract: what must not depend on placement."""
    r = job.report
    return (job.spec.name, job.state, r.state, r.words_out, r.words_lost,
            r.run_us, r.max_gap_us)


# ----------------------------------------------------------------------
def test_pool_runs_batch_to_done():
    specs = [tiny_job(f"j{i}") for i in range(10)]
    pool, jobs = asyncio.run(run_pool(specs, devices=2))
    assert all(job.state == "done" for job in jobs)
    summary = pool.summary()
    assert summary["states"] == {"done": 10}
    assert summary["words_lost"] == 0
    assert all(job.first_sample_t is not None for job in jobs)


def test_pool_results_match_single_device_and_fleet():
    """Differential determinism: 4-device overcommitted pool ==
    1-device pool == plain FleetExecutor, job for job."""
    specs = [
        tiny_job(f"d{i}", stages=1 + i % 2, count=6 + i) for i in range(8)
    ]
    pool4, jobs4 = asyncio.run(run_pool(specs, devices=4))
    pool1, jobs1 = asyncio.run(run_pool(specs, devices=1))
    fleet = FleetExecutor(
        workers=1, params=FAST, config=CONFIG, use_processes=False
    ).run(specs)
    by_name = {r.name: r for r in fleet.jobs}
    for j4, j1 in zip(jobs4, jobs1):
        assert fingerprint(j4) == fingerprint(j1)
        f = by_name[j4.spec.name]
        assert j4.report.words_out == f.words_out
        assert j4.report.max_gap_us == f.max_gap_us
        assert j4.report.state == f.state
    # the 4-device run really did spread work around
    assert len({j.device_id for j in jobs4}) > 1


def test_overcommit_grants_beyond_physical_but_binds_within():
    """With overcommit 2.0 a 2-PRR device holds 4 granted vPRRs, yet
    at most 2 are ever bound (the admission ledger enforces it)."""
    async def scenario():
        pool = make_pool(devices=1, overcommit=2.0)
        await pool.start()
        for i in range(8):
            pool.submit(tiny_job(f"oc{i}"))
        device = pool.devices[0]
        assert device.vprr_capacity == 4
        assert device.vprr_granted <= 4
        assert len(pool._pending) == 8 - device.vprr_granted
        bound = [
            v.physical for job in device.live.values() for v in job.vprrs
        ]
        assert len(bound) <= 2 and len(bound) == len(set(bound))
        await pool.drain()
        await pool.stop(drain=False)
        return pool
    pool = asyncio.run(scenario())
    assert pool.summary()["states"] == {"done": 8}


def test_no_overcommit_with_ratio_one():
    async def scenario():
        pool = make_pool(devices=1, overcommit=1.0)
        await pool.start()
        for i in range(6):
            pool.submit(tiny_job(f"nc{i}"))
        assert pool.devices[0].vprr_granted <= 2  # = physical PRRs
        await pool.drain()
        await pool.stop(drain=False)
    asyncio.run(scenario())


def test_work_stealing_rebalances_and_preserves_results():
    """Hold device 0's worker dispatches at the bridge so its backlog
    cannot drain: device 1 empties its own queue, the skew crosses the
    threshold, and the backlog must be stolen across.  Gating the
    bridge (not racing wall-clock threads) keeps the test
    deterministic on a 1-core host -- and the results must equal a
    calm single-device run of the same specs."""
    # 8 jobs exactly fill both grant ceilings (2 devices x overcommit
    # 2.0 x 2 PRRs), so no pool-pending placement masks the skew
    specs = [tiny_job(f"s{i}", count=6) for i in range(8)]

    async def scenario():
        pool = make_pool(devices=2)
        await pool.start()
        held, gate_open = [], False
        real_submit = pool.bridge.submit

        def gated_submit(worker_id, job_id, spec, ctx=None):
            if worker_id == 0 and not gate_open:
                held.append((worker_id, job_id, spec, ctx))
            else:
                real_submit(worker_id, job_id, spec, ctx)

        pool.bridge.submit = gated_submit
        jobs = [pool.submit(spec) for spec in specs]
        for _ in range(2000):  # device 1 drains, then steals fire
            if pool.steals_total > 0:
                break
            await asyncio.sleep(0.005)
        gate_open = True
        for args in held:
            real_submit(*args)
        await pool.drain()
        await pool.stop(drain=False)
        return pool, jobs

    pool2, jobs2 = asyncio.run(scenario())
    assert all(job.state == "done" for job in jobs2)
    assert pool2.steals_total > 0
    assert pool2.metrics.value("repro_pool_steals_total") == (
        pool2.steals_total
    )
    stolen = [j for j in jobs2 if j.steals > 0]
    assert stolen and all(j.device_id == 1 for j in stolen)
    pool1, jobs1 = asyncio.run(run_pool(specs, devices=1))
    for ja, jb in zip(jobs2, jobs1):
        assert fingerprint(ja) == fingerprint(jb)


def test_device_loss_requeues_queued_and_drains_bound():
    specs = [tiny_job(f"l{i}", count=6) for i in range(12)]
    seen = {}

    async def poke(pool):
        sub = pool.subscribe()
        pool.mark_device_lost(0, reason="test-loss")
        while not sub.empty():
            event = sub.get_nowait()
            seen.setdefault(event["event"], 0)
            seen[event["event"]] += 1
        pool.unsubscribe(sub)

    pool, jobs = asyncio.run(run_pool(specs, devices=2, mid_run=poke))
    assert all(job.state == "done" for job in jobs)
    assert seen.get("device_lost") == 1
    assert pool.requeues_total > 0
    # everything after the loss ran on the surviving device
    lost_jobs = [j for j in jobs if j.requeues > 0]
    assert lost_jobs and all(j.device_id == 1 for j in lost_jobs)


def test_quarantine_of_all_prrs_loses_device_and_recovery_rejoins():
    async def scenario():
        pool = make_pool(devices=2)
        await pool.start()
        for i in range(8):
            pool.submit(tiny_job(f"q{i}", count=6))
        device = pool.devices[0]
        for prr in device.physical_prrs:
            pool.quarantine_prr(0, prr)
        assert device.lost and device.lost_reason == "quarantine"
        # scrub-verified recovery: capacity returns, device rejoins
        assert not pool.release_quarantine(
            0, device.physical_prrs[0], scrub_verified=False
        )
        assert device.lost
        assert pool.release_quarantine(0, device.physical_prrs[0])
        assert not device.lost
        pool.submit(tiny_job("after-recovery", count=6))
        await pool.drain()
        await pool.stop(drain=False)
        return pool
    pool = asyncio.run(scenario())
    assert pool.summary()["states"] == {"done": 9}
    assert pool.strict_ok


def test_all_devices_lost_fails_pending():
    async def scenario():
        pool = make_pool(devices=1)
        await pool.start()
        jobs = [pool.submit(tiny_job(f"x{i}")) for i in range(6)]
        pool.mark_device_lost(0, reason="unplugged")
        await pool.drain()
        await pool.stop(drain=False)
        return pool, jobs
    pool, jobs = asyncio.run(scenario())
    failed = [j for j in jobs if j.state == "failed"]
    assert failed and all(
        "no healthy devices" in j.failure_reason for j in failed
    )
    assert not pool.strict_ok


def test_duplicate_active_name_and_draining_are_rejected():
    async def scenario():
        pool = make_pool(devices=1)
        await pool.start()
        pool.submit(tiny_job("dup"))
        with pytest.raises(PoolError, match="already active"):
            pool.submit(tiny_job("dup"))
        await pool.drain()
        with pytest.raises(PoolError, match="draining"):
            pool.submit(tiny_job("late"))
        await pool.stop(drain=False)
    asyncio.run(scenario())


def test_too_wide_job_fails_immediately():
    async def scenario():
        pool = make_pool(devices=1)
        await pool.start()
        job = pool.submit(tiny_job("wide", stages=3))  # prototype: 2 PRRs
        await pool.drain()
        await pool.stop(drain=False)
        return job
    job = asyncio.run(scenario())
    assert job.state == "failed"
    assert "widest healthy device" in job.failure_reason


def test_fake_clock_drives_all_timestamps():
    ticks = itertools.count(start=1000.0, step=0.5)

    async def scenario():
        pool = make_pool(devices=1, clock=lambda: next(ticks))
        await pool.start()
        sub = pool.subscribe()
        job = pool.submit(tiny_job("clocked"))
        await pool.drain()
        await pool.stop(drain=False)
        events = []
        while not sub.empty():
            events.append(sub.get_nowait())
        return pool, job, events
    _pool, job, events = asyncio.run(scenario())
    assert job.submitted_t >= 1000.0
    assert job.first_sample_t > job.submitted_t
    assert job.finished_t > job.first_sample_t
    stamps = [e["t"] for e in events]
    assert stamps == sorted(stamps)
    assert all(t >= 1000.0 and (t * 2) == int(t * 2) for t in stamps)
    latency = next(
        e for e in events if e["event"] == "first_sample"
    )["latency_s"]
    assert latency == job.first_sample_t - job.submitted_t


def test_pool_gauges_track_occupancy_and_tenants():
    async def scenario():
        pool = make_pool(devices=2)
        await pool.start()
        for i in range(6):
            pool.submit(tiny_job(f"m{i}"), tenant=f"t{i % 2}")
        depth = pool.metrics.value(
            "repro_pool_tenant_queue_depth", {"tenant": "t0"}
        )
        pressure = pool.metrics.value("repro_pool_overcommit_pressure")
        occupancy = pool.metrics.value(
            "repro_pool_vprr_occupancy", {"device": "0"}
        )
        await pool.drain()
        await pool.stop(drain=False)
        return depth, pressure, occupancy, pool
    depth, pressure, occupancy, pool = asyncio.run(scenario())
    assert depth is not None and depth >= 0
    assert pressure > 0  # overbooked or at least occupied at burst time
    assert occupancy > 0
    # settled back to idle after the drain
    assert pool.metrics.value("repro_pool_overcommit_pressure") == 0.0
