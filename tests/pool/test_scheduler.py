"""Property tests for the pool scheduler and the binding invariant.

The two contracts the virtualization layer stakes everything on:

* **overcommit is a grant-side fiction** -- however many vPRRs are
  granted, the *binding* of vPRRs to physical PRRs (done by each
  device's admission controller) never puts two live vPRRs on one
  physical PRR at the same instant;
* **scheduling is deterministic** -- the same view sequence always
  yields the same placements and steal plans.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SystemParameters
from repro.pool.scheduler import DeviceView, PoolScheduler
from repro.pool.devices import PooledDevice, PoolJob, VirtualPRR
from repro.runtime.jobs import Job, StageSpec, StreamJob

PARAMS = SystemParameters.prototype()  # 2 physical PRRs per device


def make_views(data):
    views = []
    for i, (prrs, granted, depth, lost) in enumerate(data):
        cap = int(2.0 * prrs)
        views.append(DeviceView(
            device_id=i, physical_prrs=prrs, vprr_capacity=cap,
            vprr_granted=min(granted, cap), queue_depth=depth, lost=lost,
        ))
    return views


view_data = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),   # healthy physical PRRs
        st.integers(min_value=0, max_value=8),   # granted
        st.integers(min_value=0, max_value=6),   # queue depth
        st.booleans(),                           # lost
    ),
    min_size=1, max_size=6,
)


@settings(max_examples=200, deadline=None)
@given(view_data, st.integers(min_value=1, max_value=3))
def test_place_respects_capacity_width_and_loss(data, need):
    scheduler = PoolScheduler(overcommit=2.0)
    views = make_views(data)
    target = scheduler.place(need, views)
    if target is None:
        # no candidate really had room
        for v in views:
            assert (
                v.lost or v.physical_prrs < need or v.vprr_free < need
            )
        return
    chosen = next(v for v in views if v.device_id == target)
    assert not chosen.lost
    assert chosen.physical_prrs >= need
    assert chosen.vprr_free >= need
    # most-headroom-wins with lowest-id tie-break (determinism)
    for v in views:
        if v.lost or v.physical_prrs < need or v.vprr_free < need:
            continue
        assert (v.vprr_free, -v.device_id) <= (
            chosen.vprr_free, -chosen.device_id
        )
    assert scheduler.place(need, views) == target  # pure function


@settings(max_examples=200, deadline=None)
@given(view_data)
def test_plan_steals_levels_without_overflowing(data):
    scheduler = PoolScheduler(overcommit=2.0, steal_threshold=2)
    views = make_views(data)
    moves = scheduler.plan_steals(views)
    assert moves == scheduler.plan_steals(views)  # deterministic
    depth = {v.device_id: v.queue_depth for v in views}
    granted = {v.device_id: v.vprr_granted for v in views}
    cap = {v.device_id: v.vprr_capacity for v in views}
    lost = {v.device_id: v.lost for v in views}
    before_total = sum(depth.values())
    for move in moves:
        assert move.source != move.target
        assert not lost[move.target]  # never steal onto a lost device
        depth[move.source] -= 1
        depth[move.target] += 1
        granted[move.source] -= 1
        granted[move.target] += 1
        assert depth[move.source] >= 0
        assert granted[move.target] <= cap[move.target]  # grant ceiling
    assert sum(depth.values()) == before_total  # jobs conserved


# ----------------------------------------------------------------------
# the binding invariant, against the real admission ledger
# ----------------------------------------------------------------------
def _mk_pool_job(job_id, width, device_id):
    spec = StreamJob(
        name=f"prop-{job_id}",
        stages=[StageSpec("passthrough") for _ in range(width)],
    )
    job = PoolJob(id=job_id, spec=spec, tenant="prop", submitted_t=0.0)
    job.runtime = Job(spec, index=job_id)
    job.vprrs = [
        VirtualPRR(vid=job_id * 10 + i, job_id=job_id, device_id=device_id)
        for i in range(width)
    ]
    return job


ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(1, 2)),   # width
        st.tuples(st.just("bind"), st.just(0)),
        st.tuples(st.just("finish"), st.integers(0, 10)),  # live pick
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(ops, st.sampled_from([1.0, 1.5, 2.0, 3.0]))
def test_no_two_live_vprrs_share_a_physical_prr(sequence, overcommit):
    """Drive one device through grant/bind/finish; at every instant the
    physically-bound vPRRs must map to distinct PRRs and the grant
    count must respect the overcommit ceiling."""
    scheduler = PoolScheduler(overcommit=overcommit)
    device = PooledDevice(0, PARAMS, scheduler)
    next_id = 0
    for op, arg in sequence:
        if op == "submit":
            view = device.view()
            if scheduler.place(arg, [view]) != 0:
                continue  # grant ceiling reached; pool would hold it
            job = _mk_pool_job(next_id, arg, 0)
            next_id += 1
            assert device.enqueue(job) == ""
        elif op == "bind":
            binding = device.next_binding()
            if binding is not None:
                job, prrs = binding
                for vprr, prr in zip(job.vprrs, prrs):
                    vprr.physical = prr
        elif op == "finish" and device.live:
            key = sorted(device.live)[arg % len(device.live)]
            job = device.live[key]
            device.release(job)
            for vprr in job.vprrs:
                vprr.physical = None
        # --- invariants, checked after every operation ---
        bound = [
            vprr.physical
            for job in device.live.values()
            for vprr in job.vprrs
            if vprr.physical is not None
        ]
        assert len(bound) == len(set(bound)), (
            f"two live vPRRs share a physical PRR: {bound}"
        )
        assert set(bound) <= set(device.physical_prrs)
        assert device.vprr_granted <= device.vprr_capacity
