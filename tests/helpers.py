"""Shared scenario builders for the test suite."""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional

from repro.core import SystemParameters, VapresSystem
from repro.modules import Iom, PassThrough
from repro.modules.base import HardwareModule
from repro.modules.sources import ramp


def build_system(
    pr_speedup: float = 1000.0, params: Optional[SystemParameters] = None
) -> VapresSystem:
    """A prototype-parameter system with fast simulated reconfiguration."""
    params = params or SystemParameters.prototype()
    return VapresSystem(replace(params, pr_speedup=pr_speedup))


def build_pipeline(
    source: Optional[Iterable[int]] = None,
    module: Optional[HardwareModule] = None,
    pr_speedup: float = 1000.0,
):
    """IOM -> module-in-prr0 -> IOM loop on the prototype system.

    Returns ``(system, iom, module, ch_in, ch_out)``.
    """
    system = build_system(pr_speedup=pr_speedup)
    iom = Iom("io0", source=source if source is not None else ramp(count=200))
    system.attach_iom("rsb0.iom0", iom)
    module = module or PassThrough("ident")
    system.place_module_directly(module, "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    return system, iom, module, ch_in, ch_out


def drain(iom: Iom) -> list:
    """Copy of the IOM's received words."""
    return list(iom.received)


def run_cycles(system: VapresSystem, cycles: int) -> None:
    system.run_for_cycles(cycles)
