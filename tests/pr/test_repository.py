"""Unit tests for the bitstream repository."""

import pytest

from repro.control.memory import CompactFlash, Sdram
from repro.fabric.geometry import Rect
from repro.modules.transforms import PassThrough
from repro.pr.bitstream import bitstream_for_rect
from repro.pr.repository import BitstreamRepository, RepositoryError

RECT = Rect(0, 0, 10, 16)


def make_repo(with_sdram=True):
    cf = CompactFlash()
    sdram = Sdram(1 << 20) if with_sdram else None
    return BitstreamRepository(cf, sdram), cf, sdram


def test_register_and_lookup():
    repo, cf, _ = make_repo()
    bitstream = bitstream_for_rect("fir", "prr0", RECT)
    repo.register(bitstream, lambda: PassThrough("fir"))
    assert repo.lookup("fir", "prr0") is bitstream
    assert repo.has("fir", "prr0")
    assert cf.has_file("fir_prr0.bit")
    assert len(repo) == 1


def test_duplicate_registration_rejected():
    repo, _, _ = make_repo()
    repo.register(bitstream_for_rect("fir", "prr0", RECT))
    with pytest.raises(RepositoryError, match="already"):
        repo.register(bitstream_for_rect("fir", "prr0", RECT))


def test_lookup_missing_pair():
    repo, _, _ = make_repo()
    repo.register(bitstream_for_rect("fir", "prr0", RECT))
    with pytest.raises(RepositoryError, match="per .module, PRR. pair"):
        repo.lookup("fir", "prr1")


def test_factory_registration():
    repo, _, _ = make_repo()
    factory = lambda: PassThrough("x")  # noqa: E731
    repo.register_factory("fir", factory)
    assert repo.factory("fir") is factory
    with pytest.raises(RepositoryError):
        repo.factory("unknown")


def test_preload_to_sdram():
    repo, _, sdram = make_repo()
    repo.register(bitstream_for_rect("fir", "prr0", RECT))
    assert not repo.is_preloaded("fir", "prr0")
    seconds = repo.preload_to_sdram("fir", "prr0")
    assert seconds > 0
    assert repo.is_preloaded("fir", "prr0")
    assert sdram.used_bytes == 36_408


def test_preload_without_sdram_raises():
    repo, _, _ = make_repo(with_sdram=False)
    repo.register(bitstream_for_rect("fir", "prr0", RECT))
    with pytest.raises(RepositoryError, match="no SDRAM"):
        repo.preload_to_sdram("fir", "prr0")
    assert not repo.is_preloaded("fir", "prr0")


def test_preload_all():
    repo, _, _ = make_repo()
    repo.register(bitstream_for_rect("fir", "prr0", RECT))
    repo.register(bitstream_for_rect("fir", "prr1", RECT))
    total = repo.preload_all()
    assert total == pytest.approx(2 * 36_408 / repo.cf.bytes_per_second)
    assert repo.is_preloaded("fir", "prr1")
