"""Unit tests for bitstream relocation (module reuse extension)."""

import pytest

from repro.control.memory import CompactFlash, Sdram
from repro.fabric.device import get_device
from repro.fabric.floorplan import Floorplan
from repro.fabric.geometry import Rect
from repro.pr.bitstream import bitstream_for_rect
from repro.pr.relocation import (
    RelocatingRepository,
    RelocationError,
    can_relocate,
    relocation_classes,
)
from repro.pr.repository import BitstreamRepository, RepositoryError


def make_floorplan():
    """Two identical PRRs plus one differently shaped one."""
    device = get_device("XC4VLX60")
    plan = Floorplan(device)
    plan.place_prr("same0", Rect(0, 0, 10, 16))
    plan.place_prr("same1", Rect(0, 16, 10, 16))
    plan.place_prr("wide", Rect(0, 32, 20, 16))
    return plan


def test_can_relocate_same_shape():
    plan = make_floorplan()
    assert can_relocate(plan.prrs["same0"], plan.prrs["same1"])
    assert not can_relocate(plan.prrs["same0"], plan.prrs["wide"])


def test_can_relocate_requires_band_alignment():
    device = get_device("XC4VLX60")
    plan = Floorplan(device)
    plan.place_prr("aligned", Rect(0, 0, 8, 8))
    plan.place_prr("offset", Rect(0, 24, 8, 8))  # row 8 within its band
    assert not can_relocate(plan.prrs["aligned"], plan.prrs["offset"])


def test_relocation_classes_grouping():
    plan = make_floorplan()
    classes = relocation_classes(list(plan.prrs.values()))
    sizes = sorted(len(group) for group in classes)
    assert sizes == [1, 2]


def make_relocating_repo():
    plan = make_floorplan()
    repo = BitstreamRepository(CompactFlash(), Sdram(1 << 22))
    relocating = RelocatingRepository(repo, plan)
    # store the module once, for the anchor PRR only
    repo.register(bitstream_for_rect("fir", "same0", plan.prrs["same0"].rect))
    return plan, repo, relocating


def test_lookup_exact_hit_passes_through():
    _, repo, relocating = make_relocating_repo()
    assert relocating.lookup("fir", "same0") is repo.lookup("fir", "same0")
    assert relocating.relocations == 0


def test_lookup_relocates_to_compatible_prr():
    _, repo, relocating = make_relocating_repo()
    relocated = relocating.lookup("fir", "same1")
    assert relocated.prr_name == "same1"
    assert relocated.size_bytes == repo.lookup("fir", "same0").size_bytes
    assert relocated.metadata["relocated_from"] == "same0"
    assert relocating.relocations == 1
    # no extra CF storage appeared
    assert not repo.has("fir", "same1")


def test_lookup_incompatible_prr_fails():
    _, _, relocating = make_relocating_repo()
    with pytest.raises(RepositoryError, match="relocatable"):
        relocating.lookup("fir", "wide")


def test_unknown_prr_rejected():
    _, _, relocating = make_relocating_repo()
    with pytest.raises(RelocationError, match="unknown PRR"):
        relocating.lookup("fir", "nope")


def test_storage_saving_accounting():
    plan, repo, relocating = make_relocating_repo()
    repo.register(bitstream_for_rect("fir", "wide", plan.prrs["wide"].rect))
    per_prr, per_class = relocating.storage_saving_bytes(["fir"])
    size_small = repo.lookup("fir", "same0").size_bytes
    size_wide = repo.lookup("fir", "wide").size_bytes
    assert per_prr == 2 * size_small + size_wide
    assert per_class == size_small + size_wide
    assert per_class < per_prr


# ----------------------------------------------------------------------
# quarantine integration (repro.faults)
# ----------------------------------------------------------------------
def test_quarantined_prr_refused_with_named_error():
    plan, repo, _ = make_relocating_repo()
    relocating = RelocatingRepository(repo, plan, quarantined={"same1"})
    with pytest.raises(RelocationError, match="'same1' is quarantined"):
        relocating.lookup("fir", "same1")
    # healthy targets still relocate
    assert relocating.lookup("fir", "same0").prr_name == "same0"


def test_quarantine_refuses_even_exact_bitstream_hits():
    plan, repo, _ = make_relocating_repo()
    repo.register(bitstream_for_rect("fir", "same1", plan.prrs["same1"].rect))
    relocating = RelocatingRepository(repo, plan, quarantined={"same1"})
    with pytest.raises(RelocationError, match="quarantined"):
        relocating.lookup("fir", "same1")


def test_quarantine_callable_tracks_live_set():
    plan, repo, _ = make_relocating_repo()
    retired = set()
    relocating = RelocatingRepository(
        repo, plan, quarantined=lambda: retired
    )
    assert relocating.lookup("fir", "same1").prr_name == "same1"
    retired.add("same1")
    with pytest.raises(RelocationError, match="quarantined"):
        relocating.lookup("fir", "same1")
    retired.clear()
    assert relocating.lookup("fir", "same1").prr_name == "same1"
