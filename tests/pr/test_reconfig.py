"""Unit tests for the reconfiguration engine (Table 2 timing)."""

import pytest

from repro.control.icap import IcapController
from repro.control.memory import BramBuffer, CompactFlash, Sdram
from repro.fabric.geometry import Rect
from repro.pr.bitstream import bitstream_for_rect
from repro.pr.reconfig import ReconfigError, ReconfigurationEngine
from repro.pr.repository import BitstreamRepository
from repro.sim.kernel import Simulator

RECT = Rect(0, 0, 10, 16)  # the prototype 640-slice PRR


def make_engine():
    sim = Simulator()
    repo = BitstreamRepository(CompactFlash(), Sdram(1 << 20))
    engine = ReconfigurationEngine(sim, IcapController(sim), repo, BramBuffer())
    repo.register(bitstream_for_rect("fir", "prr0", RECT))
    return sim, engine, repo


def test_cf2icap_duration_matches_paper():
    sim, engine, _ = make_engine()
    transfer = engine.cf2icap("fir", "prr0")
    sim.run()
    assert transfer.done
    assert transfer.duration_seconds == pytest.approx(1.043, rel=0.01)


def test_cf2icap_split_matches_paper():
    _, engine, repo = make_engine()
    breakdown = engine.cf2icap_breakdown(repo.lookup("fir", "prr0"))
    total = sum(breakdown.values())
    assert breakdown["cf_to_buffer"] / total == pytest.approx(0.953, abs=0.005)
    assert breakdown["buffer_to_icap"] / total == pytest.approx(0.047, abs=0.005)


def test_array2icap_duration_matches_paper():
    sim, engine, repo = make_engine()
    repo.preload_to_sdram("fir", "prr0")
    transfer = engine.array2icap("fir", "prr0")
    sim.run()
    assert transfer.duration_seconds == pytest.approx(0.07194, rel=0.01)


def test_array2icap_requires_preload():
    _, engine, _ = make_engine()
    with pytest.raises(ReconfigError, match="preload"):
        engine.array2icap("fir", "prr0")


def test_hooks_fire_in_order():
    sim, engine, _ = make_engine()
    events = []
    engine.on_started.append(lambda prr, mod, t: events.append(("start", prr, mod)))
    engine.on_complete.append(lambda prr, mod, t: events.append(("done", prr, mod)))
    engine.cf2icap("fir", "prr0")
    assert events == [("start", "prr0", "fir")]
    sim.run()
    assert events == [("start", "prr0", "fir"), ("done", "prr0", "fir")]
    assert engine.reconfigurations == 1


def test_on_done_callback():
    sim, engine, repo = make_engine()
    repo.preload_to_sdram("fir", "prr0")
    done = []
    engine.array2icap("fir", "prr0", on_done=done.append)
    sim.run()
    assert len(done) == 1


def test_reconfig_time_scales_with_prr_area():
    sim = Simulator()
    repo = BitstreamRepository(CompactFlash(), Sdram(1 << 22))
    engine = ReconfigurationEngine(sim, IcapController(sim), repo, BramBuffer())
    small = bitstream_for_rect("m", "small", Rect(0, 0, 5, 16))
    large = bitstream_for_rect("m", "large", Rect(0, 16, 20, 16))
    repo.register(small)
    repo.register(large)
    t_small = sum(engine.cf2icap_breakdown(small).values())
    t_large = sum(engine.cf2icap_breakdown(large).values())
    assert t_large > 3.5 * t_small  # ~4x area -> ~4x time (minus overhead)


def test_missing_sdram():
    sim = Simulator()
    repo = BitstreamRepository(CompactFlash(), None)
    engine = ReconfigurationEngine(sim, IcapController(sim), repo)
    repo.register(bitstream_for_rect("fir", "prr0", RECT))
    with pytest.raises(ReconfigError):
        engine.array2icap("fir", "prr0")
