"""Unit tests for the reconfiguration scheduler."""

import pytest

from repro.modules.transforms import PassThrough
from repro.pr.scheduler import ReconfigScheduler

from tests.helpers import build_system


def make_scheduler():
    system = build_system()
    for name in ("a", "b", "c"):
        system.register_module(name, lambda n=name: PassThrough(n))
        for prr in ("rsb0.prr0", "rsb0.prr1"):
            system.repository.preload_to_sdram(name, prr)
    return system, ReconfigScheduler(system.engine)


def test_single_request_starts_immediately():
    system, scheduler = make_scheduler()
    request = scheduler.submit("a", "rsb0.prr0")
    assert request.started
    assert scheduler.busy
    system.sim.run()
    assert request.done
    assert not scheduler.busy
    assert system.prr("rsb0.prr0").module.name == "a"


def test_requests_serialise_fifo():
    system, scheduler = make_scheduler()
    first = scheduler.submit("a", "rsb0.prr0")
    second = scheduler.submit("b", "rsb0.prr1")
    third = scheduler.submit("c", "rsb0.prr0")
    assert first.started
    assert not second.started  # queued behind the busy ICAP
    assert scheduler.pending == 3
    system.sim.run()
    assert [r.module_name for r in scheduler.completed] == ["a", "b", "c"]
    assert system.prr("rsb0.prr0").module.name == "c"
    assert system.prr("rsb0.prr1").module.name == "b"


def test_completion_order_respects_durations():
    """Each queued request waits for its predecessor's full duration."""
    system, scheduler = make_scheduler()
    scheduler.submit("a", "rsb0.prr0")
    request = scheduler.submit("b", "rsb0.prr1")
    system.sim.run()
    first, second = system.icap.history
    assert second.start_ps >= first.end_ps


def test_done_callbacks():
    system, scheduler = make_scheduler()
    fired = []
    request = scheduler.submit("a", "rsb0.prr0")
    request.add_done_callback(lambda: fired.append("x"))
    assert fired == []
    system.sim.run()
    assert fired == ["x"]
    request.add_done_callback(lambda: fired.append("late"))
    assert fired == ["x", "late"]


def test_bad_path_rejected():
    _, scheduler = make_scheduler()
    with pytest.raises(ValueError, match="unknown reconfiguration path"):
        scheduler.submit("a", "rsb0.prr0", path="jtag")


def test_cf_path_supported():
    system, scheduler = make_scheduler()
    request = scheduler.submit("a", "rsb0.prr0", path="cf2icap")
    system.sim.run()
    assert request.done
    assert request.transfer.duration_seconds > 0


def test_cancel_queued_request():
    """A queued request can be cancelled before the ICAP reaches it."""
    system, scheduler = make_scheduler()
    first = scheduler.submit("a", "rsb0.prr0")
    second = scheduler.submit("b", "rsb0.prr1")
    assert scheduler.cancel(second)
    assert second.cancelled
    assert not second.started
    system.sim.run()
    assert first.done
    assert not second.done
    assert [r.module_name for r in scheduler.completed] == ["a"]
    assert system.prr("rsb0.prr1").module is None


def test_cancel_preserves_fifo_order():
    """Cancelling a middle request must not reorder the survivors."""
    system, scheduler = make_scheduler()
    scheduler.submit("a", "rsb0.prr0")
    victim = scheduler.submit("b", "rsb0.prr1")
    scheduler.submit("c", "rsb0.prr0")
    scheduler.submit("a", "rsb0.prr1")
    assert scheduler.cancel(victim)
    system.sim.run()
    assert [r.module_name for r in scheduler.completed] == ["a", "c", "a"]
    # ICAP transfers back-to-back, still strictly serialised
    for earlier, later in zip(system.icap.history, system.icap.history[1:]):
        assert later.start_ps >= earlier.end_ps


def test_cancel_after_start_rejected():
    """A request already writing through the ICAP cannot be abandoned."""
    system, scheduler = make_scheduler()
    active = scheduler.submit("a", "rsb0.prr0")
    assert active.started
    assert not scheduler.cancel(active)
    assert not active.cancelled
    system.sim.run()
    assert active.done
    # done and double-cancel are equally rejected
    assert not scheduler.cancel(active)


def test_cancel_unknown_request_rejected():
    from repro.pr.scheduler import ScheduledReconfig

    _, scheduler = make_scheduler()
    foreign = ScheduledReconfig("a", "rsb0.prr0", "array2icap")
    assert not scheduler.cancel(foreign)


# ----------------------------------------------------------------------
# priority classes + scrub preemption (repro.faults integration)
# ----------------------------------------------------------------------
def submit_scrub(system, scheduler, label="scrub/rsb0.prr0",
                 duration=0.001):
    """Queue a preemptible scrub-priority readback transfer."""
    def starter(on_done):
        return system.icap.start_transfer(
            target=label, size_bytes=1000,
            duration_seconds=duration, on_done=on_done,
        )
    return scheduler.submit_transfer(label, "rsb0.prr0", starter)


def test_pr_traffic_outranks_queued_scrub():
    """A queued scrub readback waits behind later-arriving PR work."""
    system, scheduler = make_scheduler()
    first = scheduler.submit("a", "rsb0.prr0")
    scrub = submit_scrub(system, scheduler)
    late_pr = scheduler.submit("b", "rsb0.prr1")
    assert first.started and not scrub.started and not late_pr.started
    system.sim.run()
    assert [r.module_name for r in scheduler.completed] == \
        ["a", "b", "scrub/rsb0.prr0"]


def test_arriving_pr_preempts_active_scrub():
    """PR traffic aborts an in-flight readback and takes the port."""
    system, scheduler = make_scheduler()
    scrub = submit_scrub(system, scheduler, duration=0.01)
    assert scrub.started
    pr = scheduler.submit("a", "rsb0.prr0")
    # the scrub was kicked off the ICAP and requeued from scratch
    assert pr.started
    assert not scrub.started
    assert scrub.aborts == 1
    assert scheduler.preemptions == 1
    aborted = [t for t in system.icap.history if t.aborted]
    assert len(aborted) == 1 and not aborted[0].done
    system.sim.run()
    assert pr.done and scrub.done
    assert [r.module_name for r in scheduler.completed] == \
        ["a", "scrub/rsb0.prr0"]


def test_scrub_never_preempts_pr():
    """Scrub arriving while PR writes must wait (writes are atomic)."""
    system, scheduler = make_scheduler()
    pr = scheduler.submit("a", "rsb0.prr0")
    scrub = submit_scrub(system, scheduler)
    assert pr.started and not scrub.started
    assert scheduler.preemptions == 0
    system.sim.run()
    assert pr.done and scrub.done


def _depth(system):
    return system.sim.metrics.gauge("repro_icap_queue_depth").value


def test_cancel_updates_queue_depth_gauge():
    """Regression: cancelling queued or in-flight work must drop the
    queue-depth gauge (it used to go stale on the cancel path)."""
    system, scheduler = make_scheduler()
    scheduler.submit("a", "rsb0.prr0")
    queued = scheduler.submit("b", "rsb0.prr1")
    assert _depth(system) == 2
    assert scheduler.cancel(queued)
    assert _depth(system) == 1
    system.sim.run()
    assert _depth(system) == 0


def test_cancel_in_flight_preemptible_frees_port():
    system, scheduler = make_scheduler()
    scrub = submit_scrub(system, scheduler, duration=0.01)
    assert scrub.started and _depth(system) == 1
    assert scheduler.cancel(scrub)
    assert scrub.cancelled and not scheduler.busy
    assert _depth(system) == 0
    # the port is genuinely free for new work
    pr = scheduler.submit("a", "rsb0.prr0")
    assert pr.started
    system.sim.run()
    assert pr.done and not scrub.done


def test_hold_blocks_dispatch_until_resume():
    """hold()/resume() bracket an external ICAP user (Figure 5 switch)."""
    system, scheduler = make_scheduler()
    scheduler.hold()
    request = scheduler.submit("a", "rsb0.prr0")
    assert not request.started
    scheduler.resume()
    assert request.started
    system.sim.run()
    assert request.done
