"""Unit tests for the reconfiguration scheduler."""

import pytest

from repro.pr.scheduler import ReconfigScheduler
from repro.modules.transforms import PassThrough

from tests.helpers import build_system


def make_scheduler():
    system = build_system()
    for name in ("a", "b", "c"):
        system.register_module(name, lambda n=name: PassThrough(n))
        for prr in ("rsb0.prr0", "rsb0.prr1"):
            system.repository.preload_to_sdram(name, prr)
    return system, ReconfigScheduler(system.engine)


def test_single_request_starts_immediately():
    system, scheduler = make_scheduler()
    request = scheduler.submit("a", "rsb0.prr0")
    assert request.started
    assert scheduler.busy
    system.sim.run()
    assert request.done
    assert not scheduler.busy
    assert system.prr("rsb0.prr0").module.name == "a"


def test_requests_serialise_fifo():
    system, scheduler = make_scheduler()
    first = scheduler.submit("a", "rsb0.prr0")
    second = scheduler.submit("b", "rsb0.prr1")
    third = scheduler.submit("c", "rsb0.prr0")
    assert first.started
    assert not second.started  # queued behind the busy ICAP
    assert scheduler.pending == 3
    system.sim.run()
    assert [r.module_name for r in scheduler.completed] == ["a", "b", "c"]
    assert system.prr("rsb0.prr0").module.name == "c"
    assert system.prr("rsb0.prr1").module.name == "b"


def test_completion_order_respects_durations():
    """Each queued request waits for its predecessor's full duration."""
    system, scheduler = make_scheduler()
    scheduler.submit("a", "rsb0.prr0")
    request = scheduler.submit("b", "rsb0.prr1")
    system.sim.run()
    first, second = system.icap.history
    assert second.start_ps >= first.end_ps


def test_done_callbacks():
    system, scheduler = make_scheduler()
    fired = []
    request = scheduler.submit("a", "rsb0.prr0")
    request.add_done_callback(lambda: fired.append("x"))
    assert fired == []
    system.sim.run()
    assert fired == ["x"]
    request.add_done_callback(lambda: fired.append("late"))
    assert fired == ["x", "late"]


def test_bad_path_rejected():
    _, scheduler = make_scheduler()
    with pytest.raises(ValueError, match="unknown reconfiguration path"):
        scheduler.submit("a", "rsb0.prr0", path="jtag")


def test_cf_path_supported():
    system, scheduler = make_scheduler()
    request = scheduler.submit("a", "rsb0.prr0", path="cf2icap")
    system.sim.run()
    assert request.done
    assert request.transfer.duration_seconds > 0


def test_cancel_queued_request():
    """A queued request can be cancelled before the ICAP reaches it."""
    system, scheduler = make_scheduler()
    first = scheduler.submit("a", "rsb0.prr0")
    second = scheduler.submit("b", "rsb0.prr1")
    assert scheduler.cancel(second)
    assert second.cancelled
    assert not second.started
    system.sim.run()
    assert first.done
    assert not second.done
    assert [r.module_name for r in scheduler.completed] == ["a"]
    assert system.prr("rsb0.prr1").module is None


def test_cancel_preserves_fifo_order():
    """Cancelling a middle request must not reorder the survivors."""
    system, scheduler = make_scheduler()
    scheduler.submit("a", "rsb0.prr0")
    victim = scheduler.submit("b", "rsb0.prr1")
    scheduler.submit("c", "rsb0.prr0")
    scheduler.submit("a", "rsb0.prr1")
    assert scheduler.cancel(victim)
    system.sim.run()
    assert [r.module_name for r in scheduler.completed] == ["a", "c", "a"]
    # ICAP transfers back-to-back, still strictly serialised
    for earlier, later in zip(system.icap.history, system.icap.history[1:]):
        assert later.start_ps >= earlier.end_ps


def test_cancel_after_start_rejected():
    """A request already writing through the ICAP cannot be abandoned."""
    system, scheduler = make_scheduler()
    active = scheduler.submit("a", "rsb0.prr0")
    assert active.started
    assert not scheduler.cancel(active)
    assert not active.cancelled
    system.sim.run()
    assert active.done
    # done and double-cancel are equally rejected
    assert not scheduler.cancel(active)


def test_cancel_unknown_request_rejected():
    from repro.pr.scheduler import ScheduledReconfig

    _, scheduler = make_scheduler()
    foreign = ScheduledReconfig("a", "rsb0.prr0", "array2icap")
    assert not scheduler.cancel(foreign)
