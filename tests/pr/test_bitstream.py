"""Unit tests for partial-bitstream sizing."""


from repro.fabric.geometry import Rect
from repro.pr.bitstream import (
    FRAME_BYTES,
    FRAMES_PER_CLB_COLUMN,
    OVERHEAD_BYTES,
    bitstream_for_rect,
    frames_for_rect,
    partial_bitstream_bytes,
)


def test_frame_constants():
    assert FRAME_BYTES == 164  # 41 words x 4 bytes


def test_prototype_prr_bitstream_size():
    """10x16 CLB PRR: 220 frames + overhead = 36,408 bytes (calibration)."""
    rect = Rect(0, 0, 10, 16)
    assert frames_for_rect(rect) == 220
    assert partial_bitstream_bytes(rect) == 36_408


def test_size_scales_with_width():
    narrow = partial_bitstream_bytes(Rect(0, 0, 5, 16))
    wide = partial_bitstream_bytes(Rect(0, 0, 10, 16))
    assert (wide - OVERHEAD_BYTES) == 2 * (narrow - OVERHEAD_BYTES)


def test_size_counts_whole_bands():
    """A rect straddling two bands pays for both."""
    one_band = frames_for_rect(Rect(0, 0, 10, 16))
    straddling = frames_for_rect(Rect(0, 8, 10, 16))
    assert straddling == 2 * one_band


def test_three_band_prr():
    assert frames_for_rect(Rect(0, 0, 4, 48)) == 4 * 3 * FRAMES_PER_CLB_COLUMN


def test_bitstream_object_fields():
    bitstream = bitstream_for_rect("fir", "prr0", Rect(0, 0, 10, 16))
    assert bitstream.module_name == "fir"
    assert bitstream.prr_name == "prr0"
    assert bitstream.size_bytes == 36_408
    assert bitstream.frames == 220
    assert bitstream.filename == "fir_prr0.bit"


def test_bitstream_metadata():
    bitstream = bitstream_for_rect(
        "fir", "prr0", Rect(0, 0, 10, 16), metadata={"slices": 388}
    )
    assert bitstream.metadata["slices"] == 388
