"""Unit tests for the signal-conditioning module library."""

import pytest

from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.modules.base import ModulePorts
from repro.modules.conditioning import (
    AbsValue,
    Accumulator,
    NoiseGate,
    PeakHold,
    Upsampler,
)
from repro.modules.state import INT32_MIN, from_u32, to_u32


def run_module(module, samples, ticks=None):
    consumer = ConsumerInterface("c", depth=4096)
    producer = ProducerInterface("p", depth=4096)
    consumer.fifo_wen = True
    module.bind(ModulePorts([consumer], [producer], FslLink("t"), FslLink("r")))
    for sample in samples:
        consumer.receive(True, to_u32(sample))
    for _ in range(ticks or (len(samples) * 4 + 8)):
        module.commit()
    out = []
    while not producer.fifo.empty:
        out.append(from_u32(producer.fifo.pop()))
    return out


# ----------------------------------------------------------------------
# Upsampler
# ----------------------------------------------------------------------
def test_upsampler_zero_stuffs():
    assert run_module(Upsampler("u", 3), [5, -7]) == [5, 0, 0, -7, 0, 0]


def test_upsampler_factor_one_is_identity():
    assert run_module(Upsampler("u", 1), [1, 2]) == [1, 2]


def test_upsampler_validation():
    with pytest.raises(ValueError):
        Upsampler("u", 0)


# ----------------------------------------------------------------------
# AbsValue
# ----------------------------------------------------------------------
def test_absvalue_rectifies():
    assert run_module(AbsValue("a"), [3, -4, 0]) == [3, 4, 0]


def test_absvalue_saturates_int_min():
    assert run_module(AbsValue("a"), [INT32_MIN]) == [2**31 - 1]


# ----------------------------------------------------------------------
# PeakHold
# ----------------------------------------------------------------------
def test_peakhold_tracks_and_decays():
    module = PeakHold("p", decay_shift=1)  # fast decay: halves each step
    out = run_module(module, [100, 0, 0, 0])
    assert out[0] == 100
    assert out[1] == 50
    assert out[2] == 25
    assert out == sorted(out, reverse=True)


def test_peakhold_new_peak_overrides_decay():
    out = run_module(PeakHold("p", decay_shift=2), [10, 100, -200])
    assert out == [10, 100, 200]


def test_peakhold_state_and_monitor():
    module = PeakHold("p")
    run_module(module, [77])
    assert module.monitor_value() == 77
    assert module.save_state() == [77]
    module.reset()
    assert module.peak == 0


def test_peakhold_validation():
    with pytest.raises(ValueError):
        PeakHold("p", decay_shift=-1)


# ----------------------------------------------------------------------
# NoiseGate
# ----------------------------------------------------------------------
def test_noise_gate_hysteresis():
    gate = NoiseGate("g", open_at=100, close_at=50)
    out = run_module(gate, [10, 120, 80, 40, 60, 150])
    # closed, open(120), stays open(80 >= 50), closes(40), still closed
    # (60 < 100), reopens (150)
    assert out == [0, 120, 80, 0, 0, 150]


def test_noise_gate_default_close_threshold():
    gate = NoiseGate("g", open_at=100)
    assert gate.close_at == 50


def test_noise_gate_validation():
    with pytest.raises(ValueError):
        NoiseGate("g", open_at=-1)
    with pytest.raises(ValueError):
        NoiseGate("g", open_at=10, close_at=20)


def test_noise_gate_state_roundtrip():
    gate = NoiseGate("g", open_at=10)
    run_module(gate, [50])
    assert gate.gate_open == 1
    clone = NoiseGate("g2", open_at=10)
    clone.restore_state(gate.save_state())
    assert clone.gate_open == 1


# ----------------------------------------------------------------------
# Accumulator
# ----------------------------------------------------------------------
def test_accumulator_windowed_sums():
    out = run_module(Accumulator("a", window=3), [1, 2, 3, 4, 5, 6, 7])
    assert out == [6, 15]  # the trailing partial window stays in state


def test_accumulator_partial_window_in_state():
    module = Accumulator("a", window=3)
    run_module(module, [1, 2, 3, 4])
    assert module.acc == 4
    assert module.phase == 1


def test_accumulator_transplant_continues_window():
    stream = list(range(1, 11))
    reference = run_module(Accumulator("r", window=4), stream)
    first = Accumulator("a", window=4)
    head = run_module(first, stream[:6])
    second = Accumulator("b", window=4)
    second.restore_state(first.save_state())
    tail = run_module(second, stream[6:])
    assert head + tail == reference


def test_accumulator_validation():
    with pytest.raises(ValueError):
        Accumulator("a", 0)
