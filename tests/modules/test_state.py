"""Unit tests for wire encoding helpers."""

from repro.modules.state import (
    INT32_MAX,
    INT32_MIN,
    from_u32,
    saturate32,
    to_u32,
)


def test_positive_roundtrip():
    for value in (0, 1, 1000, INT32_MAX):
        assert from_u32(to_u32(value)) == value


def test_negative_roundtrip():
    for value in (-1, -1000, INT32_MIN):
        assert from_u32(to_u32(value)) == value


def test_to_u32_wraps():
    assert to_u32(-1) == 0xFFFFFFFF
    assert to_u32(1 << 33) == 0


def test_from_u32_sign_bit():
    assert from_u32(0x80000000) == INT32_MIN
    assert from_u32(0x7FFFFFFF) == INT32_MAX


def test_saturate():
    assert saturate32(INT32_MAX + 5) == INT32_MAX
    assert saturate32(INT32_MIN - 5) == INT32_MIN
    assert saturate32(123) == 123
