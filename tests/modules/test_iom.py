"""Unit tests for I/O modules."""

import pytest

from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.modules.base import EOS_WORD, ModulePorts
from repro.modules.iom import MSG_EOS, Iom
from repro.modules.state import to_u32


def harness(iom, depth=64):
    consumer = ConsumerInterface("c", depth=depth)
    producer = ProducerInterface("p", depth=depth)
    consumer.fifo_wen = True
    ports = ModulePorts([consumer], [producer], FslLink("t"), FslLink("r"))
    iom.bind(ports)
    return consumer, producer, ports


def tick(iom, n=1):
    for _ in range(n):
        iom.commit()


def test_source_streams_into_producer():
    iom = Iom("io", source=iter([1, 2, 3]))
    _, producer, _ = harness(iom)
    tick(iom, 5)
    assert iom.words_emitted == 3
    assert iom.source_exhausted
    assert [producer.fifo.pop() for _ in range(3)] == [1, 2, 3]


def test_source_respects_producer_capacity():
    iom = Iom("io", source=iter(range(100)))
    _, producer, _ = harness(iom, depth=4)
    tick(iom, 10)
    assert len(producer.fifo) == 4
    assert iom.words_emitted == 4  # nothing lost, just paced


def test_push_interval_rate_limits():
    iom = Iom("io", source=iter(range(100)), push_interval=4)
    harness(iom)
    tick(iom, 16)
    assert iom.words_emitted == 4


def test_words_per_push_bursts():
    iom = Iom("io", source=iter(range(100)), words_per_push=3)
    harness(iom)
    tick(iom, 2)
    assert iom.words_emitted == 6


def test_invalid_rate_params():
    with pytest.raises(ValueError):
        Iom("io", push_interval=0)
    with pytest.raises(ValueError):
        Iom("io", words_per_push=0)


def test_sink_collects_received_words():
    iom = Iom("io")
    consumer, _, _ = harness(iom)
    for value in (5, -6):
        consumer.receive(True, to_u32(value))
    tick(iom, 3)
    assert iom.received == [5, -6]


def test_eos_detection_notifies_microblaze_when_armed():
    """Step 8 of the switching methodology (one-shot, armed detector)."""
    iom = Iom("io")
    consumer, _, ports = harness(iom)
    iom.arm_eos()
    consumer.receive(True, to_u32(7))
    consumer.receive(True, EOS_WORD)
    consumer.receive(True, to_u32(8))
    tick(iom, 5)
    assert iom.received == [7, 8]  # EOS word is not data
    assert iom.eos_count == 1
    assert not iom.eos_armed  # one-shot
    assert ports.fsl_out.slave_read() == (MSG_EOS, True)


def test_eos_word_is_plain_data_when_disarmed():
    """In-band hazard regression: 0xFFFFFFFF == -1 must survive normal
    streaming without terminating anything."""
    iom = Iom("io")
    consumer, _, ports = harness(iom)
    consumer.receive(True, to_u32(-1))
    consumer.receive(True, EOS_WORD)
    tick(iom, 4)
    assert iom.received == [-1, -1]
    assert iom.eos_count == 0
    assert not ports.fsl_out.can_read


def test_arm_eos_via_fsl_command():
    """The MicroBlaze arms the detector with CMD_ARM_EOS on the t-FSL."""
    from repro.modules.iom import CMD_ARM_EOS

    iom = Iom("io")
    consumer, _, ports = harness(iom)
    ports.fsl_in.master_write(CMD_ARM_EOS, control=True)
    tick(iom, 1)
    assert iom.eos_armed
    consumer.receive(True, EOS_WORD)
    tick(iom, 2)
    assert iom.eos_count == 1


def test_receive_timestamps_recorded_with_sim():
    from repro.sim.kernel import Simulator

    iom = Iom("io")
    iom.sim = Simulator()
    consumer, _, _ = harness(iom)
    consumer.receive(True, 1)
    tick(iom)
    assert len(iom.receive_times) == 1


def test_set_source_replaces_stream():
    iom = Iom("io", source=iter([1]))
    _, producer, _ = harness(iom)
    tick(iom, 3)
    assert iom.source_exhausted
    iom.set_source(iter([10, 11]))
    tick(iom, 3)
    assert not producer.fifo.empty
    assert iom.words_emitted == 3


def test_unbound_iom_is_inert():
    iom = Iom("io", source=iter([1]))
    tick(iom, 3)
    assert iom.words_emitted == 0
