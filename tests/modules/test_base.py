"""Unit tests for the hardware-module wrapper FSM."""

import pytest

from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.modules.base import (
    CMD_FLUSH,
    CMD_START,
    EOS_WORD,
    HardwareModule,
    ModuleError,
    ModulePorts,
    staged,
)
from repro.modules.state import to_u32


class Doubler(HardwareModule):
    state_register_names = ("total",)

    def __init__(self, name="doubler", **kw):
        super().__init__(name)
        for key, value in kw.items():
            setattr(self, key, value)
        self.total = 0

    def process(self, sample):
        self.total += 1
        return sample * 2

    def on_reset(self):
        self.total = 0


def harness(module, depth=16, out_depth=None):
    consumer = ConsumerInterface("c", depth=depth)
    producer = ProducerInterface("p", depth=out_depth or depth)
    consumer.fifo_wen = True
    fsl_in = FslLink("t")
    fsl_out = FslLink("r")
    module.bind(ModulePorts([consumer], [producer], fsl_in, fsl_out))
    return consumer, producer, fsl_in, fsl_out


def feed(consumer, values):
    for value in values:
        consumer.receive(True, to_u32(value))


def collect(producer):
    words = []
    producer.fifo_ren = True
    while not producer.fifo.empty:
        words.append(producer.fifo.pop())
    return words


def tick(module, n=1):
    for _ in range(n):
        module.commit()


def test_process_not_implemented():
    module = HardwareModule("abstract")
    harness(module)
    module.ports.consumers[0].receive(True, 1)
    with pytest.raises(NotImplementedError):
        tick(module)


def test_basic_processing():
    module = Doubler()
    consumer, producer, _, _ = harness(module)
    feed(consumer, [1, 2, 3])
    tick(module, 5)
    assert collect(producer) == [2, 4, 6]
    assert module.samples_in == 3
    assert module.samples_out == 3


def test_one_cycle_module_sustains_one_word_per_cycle():
    module = Doubler()
    consumer, producer, _, _ = harness(module, depth=64)
    feed(consumer, range(10))
    tick(module, 10)
    assert module.samples_out == 10


def test_multi_cycle_latency():
    module = Doubler(cycles_per_sample=3)
    consumer, producer, _, _ = harness(module)
    feed(consumer, [5])
    tick(module, 2)
    assert module.samples_out == 0
    tick(module, 1)
    assert collect(producer) == [10]


def test_blocking_read_stalls_without_input():
    module = Doubler()
    harness(module)
    tick(module, 4)
    assert module.samples_in == 0
    assert module.stall_cycles == 4


def test_blocking_write_stalls_on_full_output():
    module = Doubler()
    consumer, producer, _, _ = harness(module, depth=16, out_depth=2)
    feed(consumer, range(6))
    tick(module, 10)  # producer FIFO (depth 2) fills; module must hold words
    produced_before = module.samples_out
    assert produced_before <= 3
    collect(producer)  # drain
    tick(module, 10)
    assert module.samples_out > produced_before
    assert consumer.words_discarded == 0


def test_reset_restores_power_on_state():
    module = Doubler()
    consumer, _, _, _ = harness(module)
    feed(consumer, [1])
    tick(module, 2)
    module.total = 99
    module.reset()
    assert module.total == 0
    assert not module.flushing
    assert not module.halted


def test_in_reset_freezes_fsm():
    module = Doubler()
    consumer, _, _, _ = harness(module)
    module.in_reset = True
    feed(consumer, [1])
    tick(module, 3)
    assert module.samples_in == 0


def test_state_save_restore_roundtrip():
    module = Doubler()
    module.total = -5
    words = module.save_state()
    fresh = Doubler()
    fresh.restore_state(words)
    assert fresh.total == -5


def test_restore_wrong_length_raises():
    with pytest.raises(ModuleError, match="expected"):
        Doubler().restore_state([1, 2])


def test_flush_emits_eos_then_state_then_halts():
    module = Doubler()
    consumer, producer, fsl_in, fsl_out = harness(module)
    feed(consumer, [1, 2])
    fsl_in.master_write(CMD_FLUSH, control=True)
    tick(module, 10)
    words = collect(producer)
    assert words == [2, 4, EOS_WORD]
    assert module.halted
    assert module.flush_complete
    # exactly one state word with the control bit set
    assert fsl_out.slave_read() == (to_u32(2), True)
    assert not fsl_out.can_read


def test_flush_drains_before_eos():
    """Words already buffered are fully processed before EOS (step 5)."""
    module = Doubler()
    consumer, producer, fsl_in, _ = harness(module, depth=32)
    feed(consumer, range(8))
    fsl_in.master_write(CMD_FLUSH, control=True)
    tick(module, 20)
    words = collect(producer)
    assert words[:-1] == [2 * v for v in range(8)]
    assert words[-1] == EOS_WORD


def test_staged_module_waits_for_start():
    module = staged(Doubler())
    consumer, producer, fsl_in, _ = harness(module)
    feed(consumer, [1])
    tick(module, 3)
    assert module.samples_in == 0  # buffered, not processed
    fsl_in.master_write(CMD_START, control=True)
    tick(module, 3)
    assert module.samples_in == 1


def test_staged_module_accepts_state_before_start():
    module = staged(Doubler())
    _, _, fsl_in, _ = harness(module)
    fsl_in.master_write(to_u32(-7), control=False)  # state word (step 7)
    fsl_in.master_write(CMD_START, control=True)
    tick(module, 2)
    assert module.total == -7
    assert module.started


def test_stateless_staged_module_start():
    class Stateless(HardwareModule):
        def process(self, sample):
            return sample

    module = staged(Stateless("s"))
    _, _, fsl_in, _ = harness(module)
    fsl_in.master_write(CMD_START, control=True)
    tick(module, 1)
    assert module.started


def test_state_words_block_until_fsl_has_space():
    """A monitoring-flooded r-FSL must not lose state words (steps 6-7):
    the module retries and halts only after the last word is out."""
    module = Doubler()
    consumer, producer, fsl_in, fsl_out = harness(module)
    # flood the r-FSL completely
    while fsl_out.master_write(0xAAAA):
        pass
    feed(consumer, [1])
    fsl_in.master_write(CMD_FLUSH, control=True)
    tick(module, 10)
    assert not module.halted  # state word still pending
    # the MicroBlaze drains one monitoring word -> one state word lands
    fsl_out.slave_read()
    tick(module, 3)
    assert module.halted
    words = []
    while fsl_out.can_read:
        words.append(fsl_out.slave_read())
    assert words[-1] == (to_u32(1), True)  # the state word, control-marked


def test_monitoring_words_emitted_periodically():
    module = Doubler(monitor_interval=2)
    consumer, producer, _, fsl_out = harness(module, depth=64)
    feed(consumer, range(6))
    tick(module, 8)
    monitors = []
    while fsl_out.can_read:
        monitors.append(fsl_out.slave_read())
    assert len(monitors) == 3  # every 2nd of 6 samples
    assert all(not control for _, control in monitors)


def test_unknown_command_ignored():
    module = Doubler()
    consumer, _, fsl_in, _ = harness(module)
    fsl_in.master_write(0x7F, control=True)
    feed(consumer, [1])
    tick(module, 2)
    assert module.samples_in == 1


def test_missing_port_raises_module_error():
    module = Doubler()
    module.bind(ModulePorts([], [], None, None))

    class Fetch1(Doubler):
        def select_input(self):
            return 1

    bad = Fetch1()
    consumer, _, _, _ = harness(bad)
    with pytest.raises(ModuleError, match="no consumer port 1"):
        bad._consumer(1)


def test_eos_waits_for_output_space():
    module = Doubler()
    consumer, producer, fsl_in, _ = harness(module, depth=1)
    feed(consumer, [1])
    fsl_in.master_write(CMD_FLUSH, control=True)
    tick(module, 5)
    assert not module.halted  # EOS cannot be written yet (FIFO holds 2)
    assert producer.fifo.pop() == 2
    tick(module, 3)
    assert producer.fifo.pop() == EOS_WORD
    assert module.halted
