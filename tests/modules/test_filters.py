"""Unit tests for the filter module library."""

import pytest

from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.modules.base import ModulePorts
from repro.modules.filters import (
    Q15_ONE,
    BiquadIir,
    FirFilter,
    MedianFilter,
    MovingAverage,
    q15,
)
from repro.modules.state import to_u32


def run_module(module, samples, ticks=None):
    consumer = ConsumerInterface("c", depth=1024)
    producer = ProducerInterface("p", depth=1024)
    consumer.fifo_wen = True
    module.bind(ModulePorts([consumer], [producer], FslLink("t"), FslLink("r")))
    for sample in samples:
        consumer.receive(True, to_u32(sample))
    for _ in range(ticks or (len(samples) * (module.cycles_per_sample + 1) + 4)):
        module.commit()
    out = []
    from repro.modules.state import from_u32

    while not producer.fifo.empty:
        out.append(from_u32(producer.fifo.pop()))
    return out


def test_q15_quantisation():
    assert q15(1.0) == Q15_ONE
    assert q15(0.5) == Q15_ONE // 2
    assert q15(-0.25) == -(Q15_ONE // 4)


def test_fir_requires_taps():
    with pytest.raises(ValueError):
        FirFilter("f", [])


def test_fir_identity():
    filt = FirFilter("f", [Q15_ONE])
    assert run_module(filt, [1, -2, 300]) == [1, -2, 300]


def test_fir_moving_average_of_two():
    filt = FirFilter.from_coefficients("f", [0.5, 0.5])
    out = run_module(filt, [10, 20, 30])
    assert out == [5, 15, 25]  # first output averages with implicit 0


def test_fir_delay_line_is_state():
    filt = FirFilter("f", [0, Q15_ONE])  # one-sample delay
    out = run_module(filt, [7, 8, 9])
    assert out == [0, 7, 8]
    assert filt.save_state() == [to_u32(9), to_u32(8)]


def test_fir_state_transplant_continues_stream():
    """The dynamic-variable handoff of the switching methodology."""
    taps = [q15(0.25), q15(0.5), q15(0.25)]
    reference = FirFilter("ref", taps)
    stream = list(range(0, 40, 3))
    expected = run_module(reference, stream)

    first = FirFilter("a", taps)
    head = run_module(first, stream[:10])
    second = FirFilter("b", taps)
    second.restore_state(first.save_state())
    tail = run_module(second, stream[10:])
    assert head + tail == expected


def test_fir_reset_clears_delay_line():
    filt = FirFilter("f", [Q15_ONE, Q15_ONE])
    run_module(filt, [5])
    filt.reset()
    assert all(getattr(filt, f"d{i}") == 0 for i in range(2))


def test_fir_monitor_reports_last_output():
    filt = FirFilter("f", [Q15_ONE], monitor_interval=1)
    run_module(filt, [42])
    assert filt.monitor_value() == 42


def test_biquad_coefficient_validation():
    with pytest.raises(ValueError):
        BiquadIir("b", [1, 2], [1, 2])


def test_biquad_passthrough():
    filt = BiquadIir("b", [Q15_ONE, 0, 0], [0, 0])
    assert run_module(filt, [3, -4, 5]) == [3, -4, 5]


def test_biquad_lowpass_smooths():
    filt = BiquadIir.from_coefficients(
        "b", [0.2, 0.2, 0.0], [-0.5, 0.0], cycles_per_sample=1
    )
    out = run_module(filt, [1000] * 30)
    # a DC input should settle near gain * 1000 with no oscillation blowup
    assert 700 <= out[-1] <= 1000
    assert out[-1] == out[-2]


def test_biquad_state_roundtrip():
    filt = BiquadIir("b", [Q15_ONE, 0, 0], [q15(-0.5), 0])
    run_module(filt, [100, 200, 300])
    words = filt.save_state()
    clone = BiquadIir("b2", [Q15_ONE, 0, 0], [q15(-0.5), 0])
    clone.restore_state(words)
    assert (clone.z1, clone.z2) == (filt.z1, filt.z2)


def test_moving_average_exact():
    filt = MovingAverage("m", window=4)
    out = run_module(filt, [4, 8, 12, 16, 20])
    assert out == [4, 6, 8, 10, 14]  # partial fills use the fill count


def test_moving_average_window_validation():
    with pytest.raises(ValueError):
        MovingAverage("m", 0)


def test_moving_average_state_includes_window_and_index():
    filt = MovingAverage("m", window=3)
    assert filt.state_word_count == 5  # 3 window regs + widx + wfill


def test_moving_average_state_transplant():
    stream = list(range(0, 60, 7))
    reference = MovingAverage("ref", window=5)
    expected = run_module(reference, stream)
    first = MovingAverage("a", window=5)
    head = run_module(first, stream[:7])
    second = MovingAverage("b", window=5)
    second.restore_state(first.save_state())
    tail = run_module(second, stream[7:])
    assert head + tail == expected


def test_median_filter_rejects_spike():
    filt = MedianFilter("med", window=3)
    out = run_module(filt, [10, 10, 9999, 10, 10])
    assert 9999 not in out[2:]


def test_median_window_validation():
    with pytest.raises(ValueError):
        MedianFilter("m", -1)


def test_median_reset():
    filt = MedianFilter("med", window=3)
    run_module(filt, [5, 6, 7])
    filt.reset()
    assert filt.wfill == 0 and filt.widx == 0
