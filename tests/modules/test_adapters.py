"""Unit tests for the stream<->FSL adapter modules."""


from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.modules.adapters import FslToStream, StreamToFsl
from repro.modules.base import CMD_FLUSH, CMD_START, EOS_WORD, ModulePorts
from repro.modules.state import to_u32


def harness(module, out_depth=64):
    consumer = ConsumerInterface("c", depth=64)
    producer = ProducerInterface("p", depth=out_depth)
    consumer.fifo_wen = True
    fsl_in = FslLink("t", depth=16)
    fsl_out = FslLink("r", depth=16)
    module.bind(ModulePorts([consumer], [producer], fsl_in, fsl_out))
    return consumer, producer, fsl_in, fsl_out


def tick(module, n=1):
    for _ in range(n):
        module.commit()


# ----------------------------------------------------------------------
# StreamToFsl
# ----------------------------------------------------------------------
def test_stream_to_fsl_forwards_in_order():
    module = StreamToFsl("s2f")
    consumer, _, _, fsl_out = harness(module)
    for value in (5, -6, 7):
        consumer.receive(True, to_u32(value))
    tick(module, 8)
    words = []
    while fsl_out.can_read:
        words.append(fsl_out.slave_read())
    assert words == [(to_u32(5), False), (to_u32(-6), False), (7, False)]
    assert module.words_forwarded == 3


def test_stream_to_fsl_blocks_on_full_link():
    module = StreamToFsl("s2f")
    consumer, _, _, fsl_out = harness(module)
    for value in range(20):
        consumer.receive(True, value)
    tick(module, 40)
    assert module.words_forwarded == 16  # FSL depth
    assert len(consumer.fifo) > 0  # back-pressured upstream
    # drain the FSL; forwarding resumes
    while fsl_out.can_read:
        fsl_out.slave_read()
    tick(module, 20)
    assert module.words_forwarded == 20


def test_stream_to_fsl_participates_in_flush():
    module = StreamToFsl("s2f")
    consumer, producer, fsl_in, fsl_out = harness(module)
    consumer.receive(True, 1)
    fsl_in.master_write(CMD_FLUSH, control=True)
    tick(module, 10)
    assert module.halted
    producer.fifo_ren = True
    assert producer.fifo.drain()[-1] == EOS_WORD


# ----------------------------------------------------------------------
# FslToStream
# ----------------------------------------------------------------------
def test_fsl_to_stream_emits_data_words():
    module = FslToStream("f2s")
    _, producer, fsl_in, _ = harness(module)
    for value in (10, 20, 30):
        fsl_in.master_write(value)
    tick(module, 6)
    assert producer.fifo.drain() == [10, 20, 30]
    assert module.words_injected == 3


def test_fsl_to_stream_waits_for_start_when_staged():
    """Protocol: CMD_START precedes stream data (the FSL is a FIFO, so a
    command behind buffered data would only be seen after the data)."""
    from repro.modules.base import staged

    module = staged(FslToStream("f2s"))
    _, producer, fsl_in, _ = harness(module)
    tick(module, 4)
    assert producer.fifo.empty
    fsl_in.master_write(CMD_START, control=True)
    fsl_in.master_write(42)
    tick(module, 4)
    assert module.started
    assert producer.fifo.drain() == [42]


def test_fsl_to_stream_command_then_data_ordering():
    """A command that arrives behind buffered data words is processed
    only after the data drains (FIFO order is preserved)."""
    module = FslToStream("f2s")
    _, producer, fsl_in, _ = harness(module)
    fsl_in.master_write(1)
    fsl_in.master_write(CMD_FLUSH, control=True)
    tick(module, 10)
    assert producer.fifo.pop() == 1
    assert producer.fifo.pop() == EOS_WORD
    assert module.halted


def test_fsl_to_stream_blocking_write():
    module = FslToStream("f2s")
    _, producer, fsl_in, _ = harness(module, out_depth=2)
    for value in range(5):
        fsl_in.master_write(value)
    # nothing lost: words wait in the producer FIFO / pending slot / FSL
    # until the downstream side drains (blocking-write semantics)
    drained = []
    for _ in range(6):
        tick(module, 10)
        drained += producer.fifo.drain()
    assert drained == [0, 1, 2, 3, 4]


def test_round_trip_through_both_adapters():
    """stream -> FSL -> (software echo) -> FSL -> stream."""
    to_sw = StreamToFsl("s2f")
    c1, _, _, r_link = harness(to_sw)
    from_sw = FslToStream("f2s")
    _, p2, t_link, _ = harness(from_sw)
    for value in range(8):
        c1.receive(True, value)
    for _ in range(30):
        to_sw.commit()
        # "software": move words from r to t
        while r_link.can_read:
            data, _ = r_link.slave_read()
            t_link.master_write(data)
        from_sw.commit()
    assert p2.fifo.drain() == list(range(8))
