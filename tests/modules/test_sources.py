"""Unit tests for synthetic signal sources."""

import itertools

from repro.modules.sources import (
    bursty,
    from_samples,
    noise,
    noisy_sine,
    ramp,
    sine_wave,
    step_change,
)


def take(iterator, n):
    return list(itertools.islice(iterator, n))


def test_ramp_finite():
    assert list(ramp(count=4)) == [0, 1, 2, 3]
    assert list(ramp(count=3, start=10, step=-2)) == [10, 8, 6]


def test_ramp_infinite():
    assert take(ramp(), 5) == [0, 1, 2, 3, 4]


def test_sine_wave_shape():
    samples = list(sine_wave(amplitude=1000, period=4, count=4))
    assert samples == [0, 1000, 0, -1000]


def test_sine_wave_amplitude_bound():
    samples = list(sine_wave(amplitude=500, period=7, count=100))
    assert all(abs(s) <= 500 for s in samples)


def test_noise_is_deterministic_per_seed():
    a = list(noise(count=20, seed=1))
    b = list(noise(count=20, seed=1))
    c = list(noise(count=20, seed=2))
    assert a == b
    assert a != c
    assert all(abs(s) <= 1000 for s in a)


def test_noisy_sine_stays_near_envelope():
    samples = list(noisy_sine(amplitude=1000, noise_amplitude=10, count=50))
    assert all(abs(s) <= 1010 for s in samples)


def test_bursty_levels():
    samples = list(bursty(quiet_level=1, burst_level=100, quiet_len=4,
                          burst_len=2, count=6))
    assert [abs(s) for s in samples] == [1, 1, 1, 1, 100, 100]
    # alternating sign
    assert samples[0] > 0 > samples[1]


def test_step_change():
    samples = list(step_change(5, 50, change_at=3, count=5))
    assert samples == [5, 5, 5, 50, 50]


def test_from_samples_replays():
    assert list(from_samples([9, 8, 7])) == [9, 8, 7]
