"""Unit tests for the transform module library."""

import zlib

import pytest

from repro.comm.fsl import FslLink
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.modules.base import ModulePorts
from repro.modules.filters import q15
from repro.modules.state import from_u32, to_u32
from repro.modules.transforms import (
    Crc32,
    Decimator,
    DeltaDecoder,
    DeltaEncoder,
    MinMaxTracker,
    PassThrough,
    Scaler,
    StreamMerger,
    StreamSplitter,
    ThresholdDetector,
)


def run_module(module, samples, inputs=1, outputs=1, ticks=None):
    consumers = [ConsumerInterface(f"c{i}", depth=1024) for i in range(inputs)]
    producers = [ProducerInterface(f"p{i}", depth=1024) for i in range(outputs)]
    for consumer in consumers:
        consumer.fifo_wen = True
    module.bind(ModulePorts(consumers, producers, FslLink("t"), FslLink("r")))
    if inputs == 1:
        for sample in samples:
            consumers[0].receive(True, to_u32(sample))
    else:
        for port, sample in samples:
            consumers[port].receive(True, to_u32(sample))
    for _ in range(ticks or (len(samples) * 2 + 6)):
        module.commit()
    results = []
    for producer in producers:
        out = []
        while not producer.fifo.empty:
            out.append(from_u32(producer.fifo.pop()))
        results.append(out)
    return results if outputs > 1 else results[0]


def test_passthrough_identity():
    assert run_module(PassThrough("p"), [1, -2, 3]) == [1, -2, 3]


def test_scaler_q15_gain():
    scaler = Scaler("s", gain=q15(0.5))
    assert run_module(scaler, [100, -100, 7]) == [50, -50, 3]


def test_scaler_gain_survives_reset():
    scaler = Scaler("s", gain=q15(2.0))
    scaler.reset()
    assert scaler.gain == q15(2.0)


def test_threshold_filters_small_samples():
    detector = ThresholdDetector("t", threshold=50)
    out = run_module(detector, [10, 60, -70, 20, 50])
    assert out == [60, -70, 50]
    assert detector.exceed_count == 3


def test_threshold_monitor_value():
    detector = ThresholdDetector("t", threshold=1)
    run_module(detector, [5, 5])
    assert detector.monitor_value() == 2
    detector.reset()
    assert detector.exceed_count == 0


def test_decimator_keeps_every_nth():
    decimator = Decimator("d", factor=3)
    out = run_module(decimator, list(range(9)))
    assert out == [0, 3, 6]


def test_decimator_phase_is_state():
    decimator = Decimator("d", factor=3)
    run_module(decimator, [0, 1])
    assert decimator.phase == 2
    clone = Decimator("d2", factor=3)
    clone.restore_state(decimator.save_state())
    assert clone.phase == 2


def test_decimator_validation():
    with pytest.raises(ValueError):
        Decimator("d", 0)


def test_delta_codec_roundtrip():
    stream = [5, 9, 3, 3, -10, 40]
    encoded = run_module(DeltaEncoder("e"), stream)
    decoded = run_module(DeltaDecoder("d"), encoded)
    assert decoded == stream


def test_delta_encoder_first_delta_from_zero():
    assert run_module(DeltaEncoder("e"), [7]) == [7]


def test_crc32_matches_zlib():
    samples = [1, 2, 3, 0x7FFFFFFF]
    crc_module = Crc32("crc")
    out = run_module(crc_module, samples)
    assert out == samples  # passthrough
    data = b"".join(to_u32(s).to_bytes(4, "little") for s in samples)
    assert crc_module.crc == (zlib.crc32(data) ^ 0xFFFFFFFF)


def test_crc32_state_transplant_continues_checksum():
    samples = list(range(10))
    whole = Crc32("whole")
    run_module(whole, samples)
    first = Crc32("a")
    run_module(first, samples[:4])
    second = Crc32("b")
    second.restore_state(first.save_state())
    run_module(second, samples[4:])
    assert second.crc == whole.crc


def test_minmax_tracker():
    tracker = MinMaxTracker("mm")
    run_module(tracker, [5, -3, 10, 2])
    assert tracker.seen_min == -3
    assert tracker.seen_max == 10
    tracker.reset()
    assert tracker.seen_min > tracker.seen_max


def test_merger_interleaves_two_inputs():
    merger = StreamMerger("m")
    samples = [(0, 1), (1, 100), (0, 2), (1, 200)]
    out = run_module(merger, samples, inputs=2)
    assert sorted(out) == [1, 2, 100, 200]
    # fairness: never two consecutive words from one stream while both have data
    assert out[0] in (1, 100) and out[1] in (1, 100)


def test_merger_drains_single_active_input():
    merger = StreamMerger("m")
    out = run_module(merger, [(0, 1), (0, 2), (0, 3)], inputs=2)
    assert out == [1, 2, 3]


def test_splitter_alternates_outputs():
    splitter = StreamSplitter("s")
    out0, out1 = run_module(splitter, [1, 2, 3, 4], outputs=2)
    assert out0 == [1, 3]
    assert out1 == [2, 4]


def test_splitter_phase_is_state():
    splitter = StreamSplitter("s")
    run_module(splitter, [1], outputs=2)
    assert splitter.phase == 1
