"""Unit tests for the compaction planner (repro.compact.planner).

Everything runs against plain-data :class:`RsbView` snapshots on the
canonical fragmentation-prone layout from
:func:`repro.compact.workloads.churn_params`: six PRRs at bus positions
1,2,3,5,6,7 interleaved with three IOMs at 0,4,8 and a single lane per
direction.  Two pinned long tenants parked mid-bus (prr3 from iom0,
prr4 from iom2) split the free pool into runs of 3 and 1; compacting
each next to its own IOM coalesces a run of 4.
"""

import pytest

from repro.compact.planner import (
    CompactionError,
    JobPlacement,
    Relocation,
    RsbView,
    free_run_stats,
    plan_compaction,
)

PRR_POS = {f"rsb0.prr{i}": pos for i, pos in enumerate([1, 2, 3, 5, 6, 7])}
IOM_POS = {"rsb0.iom0": 0, "rsb0.iom1": 4, "rsb0.iom2": 8}


def churn_view(**overrides):
    """The canonical fragmented snapshot; override fields per test."""
    kwargs = dict(
        name="rsb0",
        prr_position=dict(PRR_POS),
        iom_position=dict(IOM_POS),
        kr=1,
        kl=1,
        placements={
            "long-a": JobPlacement("rsb0.iom0", ("rsb0.prr3",)),
            "long-b": JobPlacement("rsb0.iom2", ("rsb0.prr4",)),
        },
    )
    kwargs.update(overrides)
    return RsbView(**kwargs)


# ----------------------------------------------------------------------
# snapshot validation
# ----------------------------------------------------------------------
def test_view_rejects_duplicate_attachment_positions():
    with pytest.raises(CompactionError, match="distinct"):
        churn_view(iom_position={"rsb0.iom0": 1, "rsb0.iom1": 4})


def test_view_rejects_placements_on_unknown_slots():
    with pytest.raises(CompactionError, match="unknown slots"):
        churn_view(
            placements={"ghost": JobPlacement("rsb0.iom0", ("rsb9.prr9",))}
        )
    with pytest.raises(CompactionError, match="unknown slots"):
        churn_view(
            placements={"ghost": JobPlacement("rsb9.iom9", ("rsb0.prr0",))}
        )


def test_free_pool_excludes_occupied_and_unhealthy():
    view = churn_view(unhealthy={"rsb0.prr0"})
    assert view.free_prrs() == {"rsb0.prr1", "rsb0.prr2", "rsb0.prr5"}
    assert view.occupied_prrs() == {"rsb0.prr3", "rsb0.prr4"}


# ----------------------------------------------------------------------
# free-run statistics
# ----------------------------------------------------------------------
def test_free_run_stats_on_fragmented_snapshot():
    # free = prr0,prr1,prr2 (run of 3) + prr5 (run of 1)
    assert free_run_stats([churn_view()]) == (4, 3)


def test_free_run_stats_empty_and_full():
    assert free_run_stats([]) == (0, 0)
    empty = churn_view(placements={})
    assert free_run_stats([empty]) == (6, 6)


def test_free_run_stats_honours_overrides():
    view = churn_view()
    after = {"rsb0": {"rsb0.prr1", "rsb0.prr2", "rsb0.prr3", "rsb0.prr4"}}
    assert free_run_stats([view], overrides=after) == (4, 4)


# ----------------------------------------------------------------------
# planning on the canonical layout
# ----------------------------------------------------------------------
def test_plan_compacts_both_tenants_toward_their_ioms():
    plan = plan_compaction([churn_view()])
    assert plan.moves == [
        Relocation("long-a", "rsb0", 0, "rsb0.prr3", "rsb0.prr0"),
        Relocation("long-b", "rsb0", 0, "rsb0.prr4", "rsb0.prr5"),
    ]
    assert plan.before == (4, 3)
    assert plan.after == (4, 4)
    assert plan.gain == 1
    assert not plan.empty


def test_plan_targets_are_free_when_their_move_runs():
    plan = plan_compaction([churn_view()])
    occupied = {"rsb0.prr3", "rsb0.prr4"}
    for move in plan.moves:
        assert move.new_prr not in occupied
        occupied.discard(move.old_prr)
        occupied.add(move.new_prr)


def test_already_compact_layout_yields_empty_plan():
    view = churn_view(
        placements={
            "long-a": JobPlacement("rsb0.iom0", ("rsb0.prr0",)),
            "long-b": JobPlacement("rsb0.iom2", ("rsb0.prr5",)),
        }
    )
    plan = plan_compaction([view])
    assert plan.empty
    assert plan.before == plan.after


def test_no_movable_jobs_yields_empty_plan():
    view = churn_view(
        placements={},
        held_prrs={"rsb0.prr3", "rsb0.prr4"},
        held_chains=[
            ("rsb0.iom0", "rsb0.prr3", "rsb0.iom0"),
            ("rsb0.iom2", "rsb0.prr4", "rsb0.iom2"),
        ],
    )
    assert plan_compaction([view]).empty


# ----------------------------------------------------------------------
# constraints: health, holds, vetoes, lanes
# ----------------------------------------------------------------------
def test_unhealthy_prr_is_never_a_move_target():
    plan = plan_compaction([churn_view(unhealthy={"rsb0.prr0"})])
    assert plan.moves  # compaction still possible via prr1
    assert all(m.new_prr != "rsb0.prr0" for m in plan.moves)
    assert plan.moves[0] == Relocation(
        "long-a", "rsb0", 0, "rsb0.prr3", "rsb0.prr1"
    )
    assert plan.after[1] > plan.before[1]


def test_held_prr_is_never_a_move_target():
    # kr=kl=2 so the held tenant's chain does not lane-block the moves
    view = churn_view(
        kr=2,
        kl=2,
        held_prrs={"rsb0.prr0"},
        held_chains=[("rsb0.iom0", "rsb0.prr0", "rsb0.iom0")],
    )
    plan = plan_compaction([view])
    assert plan.moves
    assert all(m.new_prr != "rsb0.prr0" for m in plan.moves)
    # before: prr1+prr2 run of 2; after: prr2,prr3,prr4 run of 3
    assert plan.before[1] == 2
    assert plan.after[1] == 3


def test_move_ok_veto_prunes_every_move():
    plan = plan_compaction(
        [churn_view()], move_ok=lambda job, old, new: False
    )
    assert plan.empty


def test_held_chain_can_make_a_move_lane_infeasible():
    # a pinned resident's chain spans the whole bus on the single lane
    # pair, so no relocation can route -- the planner must refuse
    view = churn_view(
        placements={
            "long-a": JobPlacement("rsb0.iom0", ("rsb0.prr3",)),
        },
        held_prrs={"rsb0.prr5"},
        held_chains=[("rsb0.iom0", "rsb0.prr5", "rsb0.iom0")],
    )
    assert plan_compaction([view]).empty


def test_plan_refuses_churn_that_does_not_raise_largest_run():
    # long-b pinned in place: relocating long-a alone shuffles the free
    # pool but the largest run stays 3, so the plan is discarded
    view = churn_view(
        placements={"long-a": JobPlacement("rsb0.iom0", ("rsb0.prr3",))},
        held_prrs={"rsb0.prr4"},
        held_chains=[("rsb0.iom2", "rsb0.prr4", "rsb0.iom2")],
    )
    plan = plan_compaction([view])
    assert plan.empty
    assert plan.before == plan.after
