"""Golden tests for the VAP1xx floorplan DRC."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SystemParameters
from repro.fabric.device import DEVICES, get_device
from repro.fabric.floorplan import Floorplan, PrrPlacement, auto_floorplan
from repro.fabric.geometry import Rect, clock_regions_of
from repro.verify.drc import check_floorplan


def insert(plan, name, rect, boundary_signals=0):
    """Insert a placement without placement-time validation (loader idiom)."""
    plan.prrs[name] = PrrPlacement(
        name,
        rect,
        clock_regions_of(rect, plan.device.clb_cols),
        boundary_signals,
    )


def codes(diagnostics):
    return {d.code for d in diagnostics}


def errors(diagnostics):
    return {d.code for d in diagnostics if d.severity == "error"}


# ---------------------------------------------------------------------------
# clean fixtures
# ---------------------------------------------------------------------------

def test_auto_floorplan_prototype_is_clean():
    params = SystemParameters.prototype()
    plan = auto_floorplan(
        get_device("XC4VLX25"), [("rsb0.prr0", 640), ("rsb0.prr1", 640)]
    )
    diagnostics = check_floorplan(plan, params)
    assert errors(diagnostics) == set()
    assert codes(diagnostics) == {"VAP110"}  # only the utilisation summary


def test_empty_floorplan_has_no_findings():
    assert check_floorplan(Floorplan(get_device("XC4VLX25"))) == []


# ---------------------------------------------------------------------------
# triggering fixtures, one per code
# ---------------------------------------------------------------------------

def test_vap101_out_of_bounds():
    plan = Floorplan(get_device("XC4VLX25"))
    insert(plan, "p0", Rect(90, 0, 10, 16))
    diagnostics = check_floorplan(plan)
    assert "VAP101" in errors(diagnostics)
    assert any("p0" in d.message and "bounds" in d.message
               for d in diagnostics if d.code == "VAP101")


def test_vap102_overlapping_prrs():
    plan = Floorplan(get_device("XC4VLX25"))
    insert(plan, "a", Rect(0, 0, 8, 16))
    insert(plan, "b", Rect(4, 8, 8, 16))
    assert "VAP102" in errors(check_floorplan(plan))


def test_vap102_prr_over_static_reservation():
    plan = Floorplan(get_device("XC4VLX25"))
    plan.static_rects.append(Rect(0, 0, 8, 16))
    insert(plan, "a", Rect(0, 0, 8, 16))
    found = [d for d in check_floorplan(plan) if d.code == "VAP102"]
    assert found and "static" in found[0].message


def test_vap103_shared_clock_region_without_overlap():
    plan = Floorplan(get_device("XC4VLX25"))
    insert(plan, "a", Rect(0, 0, 4, 16))
    insert(plan, "b", Rect(6, 0, 4, 16))
    diagnostics = check_floorplan(plan)
    assert "VAP103" in errors(diagnostics)
    assert "VAP102" not in codes(diagnostics)  # they do not overlap


def test_vap104_spans_both_device_halves():
    device = get_device("XC4VLX25")
    plan = Floorplan(device)
    insert(plan, "wide", Rect(device.center_col - 4, 0, 8, 16))
    assert "VAP104" in errors(check_floorplan(plan))


def test_vap105_too_tall_for_a_bufr():
    plan = Floorplan(get_device("XC4VLX25"))
    insert(plan, "tall", Rect(0, 0, 4, 64))  # 4 clock regions
    assert "VAP105" in errors(check_floorplan(plan))


def test_vap106_bufr_oversubscription():
    plan = Floorplan(get_device("XC4VLX25"))
    # three PRRs whose BUFR lands in the same region (limit is 2 per region)
    insert(plan, "a", Rect(0, 0, 2, 16))
    insert(plan, "b", Rect(4, 0, 2, 16))
    insert(plan, "c", Rect(8, 0, 2, 16))
    assert "VAP106" in errors(check_floorplan(plan))


def test_vap107_slice_macro_sites_collide():
    plan = Floorplan(get_device("XC4VLX25"))
    insert(plan, "p0", Rect(0, 0, 4, 16), boundary_signals=200)
    assert "VAP107" in errors(check_floorplan(plan))


def test_vap108_prrs_exceed_device():
    device = get_device("XC4VLX15")
    plan = Floorplan(device)
    # two full-device placements together claim 2x the device's slices
    insert(plan, "a", Rect(0, 0, 24, 64))
    insert(plan, "b", Rect(0, 0, 24, 64))
    assert "VAP108" in errors(check_floorplan(plan))


def test_vap108_static_region_does_not_fit():
    params = SystemParameters.figure7()  # needs ~11k static slices
    plan = auto_floorplan(
        get_device("XC4VLX25"),
        [(f"rsb0.prr{i}", 640) for i in range(4)],
    )
    assert "VAP108" in errors(check_floorplan(plan, params))


def test_vap109_prr_smaller_than_configured():
    params = SystemParameters.prototype()  # wants 640-slice PRRs
    plan = Floorplan(get_device("XC4VLX25"))
    insert(plan, "rsb0.prr0", Rect(0, 0, 4, 16))  # 256 slices
    insert(plan, "rsb0.prr1", Rect(0, 16, 4, 16))
    diagnostics = check_floorplan(plan, params)
    hits = [d for d in diagnostics if d.code == "VAP109"]
    assert len(hits) == 2
    assert all(d.severity == "warning" for d in hits)


def test_vap110_summary_is_informational():
    plan = auto_floorplan(get_device("XC4VLX25"), [("p0", 640)])
    summary = [d for d in check_floorplan(plan) if d.code == "VAP110"]
    assert len(summary) == 1
    assert summary[0].severity == "info"
    assert "clock regions" in summary[0].message


# ---------------------------------------------------------------------------
# property: whatever auto_floorplan accepts, the DRC accepts
# ---------------------------------------------------------------------------

@given(
    device_name=st.sampled_from(sorted(DEVICES)),
    count=st.integers(1, 4),
    slices=st.integers(4, 640),
    regions=st.integers(1, 3),
)
@settings(max_examples=80, deadline=None)
def test_auto_floorplan_always_passes_drc(device_name, count, slices, regions):
    from repro.fabric.floorplan import FloorplanError

    device = get_device(device_name)
    try:
        plan = auto_floorplan(
            device,
            [(f"p{i}", slices) for i in range(count)],
            regions_per_prr=regions,
        )
    except FloorplanError:
        return  # the floorplanner refused; nothing to check
    diagnostics = check_floorplan(plan)
    assert errors(diagnostics) == set(), [str(d) for d in diagnostics]
