"""Golden tests for the VAP21x credit-loop analyzer."""

from repro.verify.credits import check_channel, check_credits, round_trip_cycles


def codes(diagnostics):
    return {d.code for d in diagnostics}


def test_round_trip_formula():
    assert round_trip_cycles(0) == 2
    assert round_trip_cycles(2) == 6
    assert round_trip_cycles(7) == 16


def test_clean_channel_reports_only_the_summary(pipeline):
    system, *_ = pipeline
    diagnostics = check_credits(system)
    assert codes(diagnostics) == {"VAP214"}
    assert len(diagnostics) == 2  # one summary per channel
    assert all(d.severity == "info" for d in diagnostics)


def test_vap211_slack_swallows_the_whole_fifo(pipeline):
    system, _, _, ch_in, _ = pipeline
    ch_in.consumer.set_backpressure_slack(ch_in.consumer.fifo.capacity)
    found = check_channel(ch_in)
    assert codes(found) == {"VAP211"}  # terminal: no summary either
    assert found[0].severity == "error"


def test_vap212_slack_below_in_flight_words(pipeline):
    system, _, _, ch_in, _ = pipeline
    ch_in.consumer.set_backpressure_slack(2 * ch_in.d - 1)
    found = check_channel(ch_in)
    assert "VAP212" in codes(found)
    assert "VAP211" not in codes(found)


def test_vap213_credit_window_below_round_trip(pipeline):
    system, _, _, ch_in, _ = pipeline
    fifo = ch_in.consumer.fifo
    # keep slack legal (2d) but shrink the usable window below the rtt
    fifo.capacity = 2 * ch_in.d + round_trip_cycles(ch_in.d) - 1
    found = check_channel(ch_in)
    assert "VAP213" in codes(found)
    assert all(d.code != "VAP212" for d in found)
    warning = next(d for d in found if d.code == "VAP213")
    assert warning.severity == "warning"


def test_summary_carries_the_loop_numbers(pipeline):
    system, _, _, ch_in, _ = pipeline
    summary = next(
        d for d in check_channel(ch_in) if d.code == "VAP214"
    )
    assert f"d={ch_in.d}" in summary.message
    assert f"round-trip={round_trip_cycles(ch_in.d)}" in summary.message


def test_released_channels_are_not_analyzed(pipeline):
    system, _, _, ch_in, ch_out = pipeline
    system.close_stream(ch_in)
    diagnostics = check_credits(system)
    assert len(diagnostics) == 1  # only ch_out remains
    assert ch_out.consumer.name in diagnostics[0].location
