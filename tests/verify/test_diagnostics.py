"""Golden tests for the diagnostic registry and report container."""

import json

import pytest

from repro.verify.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    VerificationError,
    VerifyReport,
    diag,
)

FAMILY_BY_PREFIX = {
    "VAP1": "fabric",
    "VAP2": "comm",
    "VAP3": "switching",
    "VAP4": "kernel",
    "VAP5": "config",
}


def test_every_code_is_well_formed():
    for code, info in CODES.items():
        assert code.startswith("VAP") and len(code) == 6, code
        assert info.family == FAMILY_BY_PREFIX[code[:4]], code
        assert isinstance(info.severity, Severity)
        assert info.meaning


def test_registry_covers_all_families():
    families = {info.family for info in CODES.values()}
    assert families == {"fabric", "comm", "switching", "kernel", "config"}


def test_diag_fills_severity_from_registry():
    d = diag("VAP101", "out of bounds", location="prr0", analyzer="drc")
    assert d.severity is Severity.ERROR
    assert d.family == "fabric"
    assert "VAP101" in str(d) and "prr0" in str(d)


def test_diag_rejects_unregistered_code():
    with pytest.raises(KeyError, match="VAP999"):
        diag("VAP999", "nope")


def test_diagnostic_as_dict_round_trips_through_json():
    d = diag("VAP203", "slow consumer", location="ch0")
    payload = json.loads(json.dumps(d.as_dict()))
    assert payload["code"] == "VAP203"
    assert payload["severity"] == "warning"
    assert payload["family"] == "comm"


def test_report_counts_and_ok():
    report = VerifyReport(subject="s")
    assert report.ok
    report.add(diag("VAP110", "summary"))
    assert report.ok and len(report.infos) == 1
    report.add(diag("VAP102", "overlap"))
    assert not report.ok and len(report.errors) == 1


def test_report_by_code_and_families():
    report = VerifyReport(subject="s")
    report.extend([diag("VAP211", "a"), diag("VAP211", "b"), diag("VAP304", "c")])
    assert len(report.by_code("VAP211")) == 2
    assert report.families == ["comm", "switching"]
    assert report.codes == ["VAP211", "VAP304"]


def test_raise_on_errors_carries_the_report():
    report = VerifyReport(subject="s")
    report.add(diag("VAP101", "bad"))
    with pytest.raises(VerificationError) as excinfo:
        report.raise_on_errors()
    assert excinfo.value.report is report
    assert "VAP101" in str(excinfo.value)


def test_raise_on_errors_passes_with_warnings_only():
    report = VerifyReport(subject="s")
    report.add(diag("VAP213", "small window"))
    report.raise_on_errors()  # warnings never raise


def test_render_text_filters_info():
    report = VerifyReport(subject="s")
    report.extend([diag("VAP110", "layout summary"), diag("VAP102", "overlap")])
    full = report.render_text(include_info=True)
    quiet = report.render_text(include_info=False)
    assert "VAP110" in full and "VAP110" not in quiet
    assert "VAP102" in full and "VAP102" in quiet


def test_to_json_shape():
    report = VerifyReport(subject="sys")
    report.add(diag("VAP201", "sync fifo", location="ch0", analyzer="cdc"))
    payload = json.loads(report.to_json())
    assert payload["subject"] == "sys"
    assert payload["ok"] is False
    assert payload["errors"] == 1
    assert payload["codes"] == ["VAP201"]
    assert payload["families"] == ["comm"]
    assert payload["diagnostics"][0]["analyzer"] == "cdc"


def test_diagnostic_is_frozen():
    d = diag("VAP110", "info")
    with pytest.raises(Exception):
        d.message = "mutated"  # type: ignore[misc]


def test_readme_table_matches_the_registry():
    from pathlib import Path

    readme = (Path(__file__).resolve().parents[2] / "README.md").read_text()
    documented = {}
    for line in readme.splitlines():
        cells = [c.strip() for c in line.strip("|").split("|")]
        if len(cells) == 3 and cells[0].startswith("VAP"):
            documented[cells[0]] = cells[1]
    assert set(documented) == set(CODES)
    for code, severity in documented.items():
        assert severity == str(CODES[code].severity), code


def test_severity_is_str_valued():
    assert str(Severity.ERROR) == "error"
    assert Severity.WARNING == "warning"
    assert isinstance(Diagnostic, type)
