"""Golden tests for the VAP2xx clock-domain-crossing lint."""

from repro.sim.fifo import SyncFifo
from repro.verify.cdc import MIN_SYNC_STAGES, check_cdc, domain_frequencies


def codes(diagnostics):
    return {d.code for d in diagnostics}


def test_clean_pipeline_has_no_cdc_findings(pipeline):
    system, *_ = pipeline
    assert check_cdc(system) == []


def test_domain_frequencies_cover_static_and_every_prr(pipeline):
    system, *_ = pipeline
    domains = domain_frequencies(system)
    assert domains["static"] == system.system_clock.frequency_hz
    for slot in system.prr_slots:
        assert domains[slot.name] == slot.lcd_clock.frequency_hz


def test_vap201_sync_fifo_on_a_crossing(pipeline):
    system, _, _, ch_in, _ = pipeline
    old = ch_in.consumer.fifo
    ch_in.consumer.fifo = SyncFifo(
        old.capacity, name=old.name, almost_full_slack=old.almost_full_slack
    )
    found = [d for d in check_cdc(system) if d.code == "VAP201"]
    assert len(found) == 1
    assert found[0].severity == "error"
    assert old.name in found[0].message


def test_vap202_thin_synchroniser(pipeline):
    system, _, _, ch_in, _ = pipeline
    ch_in.consumer.fifo.sync_stages = 1
    found = [d for d in check_cdc(system) if d.code == "VAP202"]
    assert len(found) == 1
    assert str(MIN_SYNC_STAGES) in found[0].message


def test_vap203_slow_consumer_domain(pipeline):
    system, _, _, ch_in, _ = pipeline
    # divisor 2 halves the consumer PRR's local clock (100 -> 50 MHz)
    system.prr("rsb0.prr0").bufgmux.select(1)
    found = [d for d in check_cdc(system) if d.code == "VAP203"]
    assert found and all(d.severity == "warning" for d in found)
    assert any(ch_in.consumer.name in d.location for d in found)


def test_released_channels_are_skipped(pipeline):
    system, _, _, ch_in, _ = pipeline
    ch_in.consumer.fifo = SyncFifo(4, name="bad")
    system.close_stream(ch_in)
    assert "VAP201" not in codes(check_cdc(system))


def test_fsl_links_are_linted(pipeline):
    system, *_ = pipeline
    slot = system.prr("rsb0.prr0")
    slot.fsl_to_module.fifo.sync_stages = 0
    found = [d for d in check_cdc(system) if d.code == "VAP202"]
    assert any("FSL" in d.message for d in found)
