"""End-to-end tests: runner, loader, flows integration and the CLI."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.core.params import SystemParameters
from repro.fabric.device import get_device
from repro.fabric.floorplan import Floorplan, PrrPlacement
from repro.fabric.geometry import Rect, clock_regions_of
from repro.flows.base_system import BaseSystemFlow
from repro.sim.fifo import SyncFifo
from repro.verify.diagnostics import VerificationError
from repro.verify.loader import LoaderError, build_system, load_sysdef
from repro.verify.runner import verify_build, verify_system

from tests.verify.conftest import fixture_path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "sysdefs"


def bad_floorplan():
    """Two overlapping PRRs, inserted without placement-time validation."""
    device = get_device("XC4VLX25")
    plan = Floorplan(device)
    for name, rect in (
        ("rsb0.prr0", Rect(0, 0, 10, 16)),
        ("rsb0.prr1", Rect(5, 8, 10, 16)),
    ):
        plan.prrs[name] = PrrPlacement(
            name, rect, clock_regions_of(rect, device.clb_cols)
        )
    return plan


# ---------------------------------------------------------------------------
# runner + System.verify()
# ---------------------------------------------------------------------------

def test_verify_system_clean(pipeline):
    system, *_ = pipeline
    report = verify_system(system)
    assert report.ok
    assert report.subject == system.params.name


def test_verify_system_strict_raises(pipeline):
    system, _, _, ch_in, _ = pipeline
    ch_in.consumer.fifo = SyncFifo(4, name="bad")
    with pytest.raises(VerificationError, match="VAP201"):
        verify_system(system, strict=True)


def test_system_verify_method(pipeline):
    system, *_ = pipeline
    report = system.verify()
    assert report.ok and "VAP214" in report.codes


def test_flow_runs_verify_and_records_the_report():
    build = BaseSystemFlow(SystemParameters.prototype()).run()
    assert build.report["verify"].ok


def test_flow_strict_verify_rejects_bad_hand_built_floorplan():
    flow = BaseSystemFlow(SystemParameters.prototype())
    with pytest.raises(VerificationError, match="VAP10"):
        flow.run(floorplan=bad_floorplan())
    # opting out keeps the legacy permissive behaviour
    build = flow.run(floorplan=bad_floorplan(), verify=False)
    assert "verify" not in build.report


def test_verify_build_checks_only_the_floorplan():
    build = BaseSystemFlow(SystemParameters.prototype()).run(verify=False)
    report = verify_build(build)
    assert report.ok and all(c.startswith("VAP1") for c in report.codes)


# ---------------------------------------------------------------------------
# loader
# ---------------------------------------------------------------------------

def test_loader_unknown_preset():
    with pytest.raises(LoaderError, match="unknown preset"):
        build_system({"preset": "nope"})


def test_loader_requires_complete_floorplan():
    with pytest.raises(LoaderError, match="missing"):
        build_system({
            "preset": "prototype",
            "floorplan": [
                {"name": "rsb0.prr0", "col": 0, "row": 0,
                 "width": 8, "height": 16},
            ],
        })


def test_loader_rejects_bad_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(LoaderError, match="not valid JSON"):
        load_sysdef(path)


def test_loader_board_override_applies_to_preset():
    loaded = build_system({"preset": "figure7", "board": "ML402"})
    assert loaded.system.floorplan.device.name == "XC4VLX60"


@pytest.mark.parametrize(
    "fixture, family",
    [
        ("bad_fabric.json", "fabric"),
        ("bad_comm.json", "comm"),
        ("bad_switching.json", "switching"),
        ("bad_kernel.json", "kernel"),
    ],
)
def test_each_family_has_a_triggering_fixture(fixture, family):
    loaded = load_sysdef(fixture_path(fixture))
    report = verify_system(
        loaded.system, switch_plans=loaded.switch_plans
    )
    assert not report.ok
    assert family in {d.family for d in report.errors}


def test_clean_fixture_verifies_ok():
    loaded = load_sysdef(fixture_path("clean.json"))
    report = verify_system(loaded.system, switch_plans=loaded.switch_plans)
    assert report.ok


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_preset_exits_zero(capsys):
    assert main(["verify", "prototype"]) == 0
    assert "VAP110" in capsys.readouterr().out


def test_cli_quiet_hides_info(capsys):
    assert main(["verify", "prototype", "--quiet"]) == 0
    assert "VAP110" not in capsys.readouterr().out


def test_cli_broken_fixture_reports_four_families(capsys):
    code = main(["verify", fixture_path("broken.json"), "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert set(payload["families"]) >= {
        "fabric", "comm", "switching", "kernel"
    }
    severities = {d["code"]: d["severity"] for d in payload["diagnostics"]}
    assert severities["VAP102"] == "error"
    assert severities["VAP203"] == "warning"
    assert severities["VAP110"] == "info"


def test_cli_missing_file_exits_two(capsys):
    assert main(["verify", "/no/such/file.json"]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_cli_probe_cycles_runs_clean(capsys):
    assert main(["verify", fixture_path("clean.json"),
                 "--probe-cycles", "25"]) == 0


@pytest.mark.parametrize(
    "example", sorted(p.name for p in EXAMPLES.glob("*.json"))
)
def test_every_shipped_example_verifies_clean(example, capsys):
    assert main(["verify", str(EXAMPLES / example)]) == 0
