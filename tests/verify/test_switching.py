"""Golden tests for the VAP3xx switching-precondition checker."""

import pytest

from repro.modules import PassThrough
from repro.verify.diagnostics import VerificationError
from repro.verify.switching import SwitchPlan, check_switch

from tests.helpers import build_pipeline


def codes(diagnostics):
    return {d.code for d in diagnostics}


def make_plan(ch_in, ch_out, **overrides):
    plan = dict(
        old_prr="rsb0.prr0",
        new_prr="rsb0.prr1",
        new_module="filterB",
        upstream_slot="rsb0.iom0",
        downstream_slot="rsb0.iom0",
        input_channel=ch_in,
        output_channel=ch_out,
    )
    plan.update(overrides)
    return SwitchPlan(**plan)


@pytest.fixture
def ready():
    """Pipeline plus a fully prepared replacement module ``filterB``."""
    system, iom, module, ch_in, ch_out = build_pipeline()
    system.register_module("filterB", lambda: PassThrough("filterB"))
    system.repository.preload_to_sdram("filterB", "rsb0.prr1")
    return system, ch_in, ch_out


def test_prepared_switch_is_clean(ready):
    system, ch_in, ch_out = ready
    assert check_switch(system, make_plan(ch_in, ch_out)) == []


def test_vap304_source_prr_empty(ready):
    system, ch_in, ch_out = ready
    plan = make_plan(ch_in, ch_out, old_prr="rsb0.prr1", new_prr="rsb0.prr0")
    assert "VAP304" in codes(check_switch(system, plan))


def test_vap304_unknown_source_prr(ready):
    system, ch_in, ch_out = ready
    plan = make_plan(ch_in, ch_out, old_prr="rsb9.prr9")
    assert "VAP304" in codes(check_switch(system, plan))


def test_vap305_unknown_target(ready):
    system, ch_in, ch_out = ready
    plan = make_plan(ch_in, ch_out, new_prr="rsb0.prr7")
    assert "VAP305" in codes(check_switch(system, plan))


def test_vap305_target_mid_reconfiguration(ready):
    system, ch_in, ch_out = ready
    system.prr("rsb0.prr1").reconfiguring = True
    found = check_switch(system, make_plan(ch_in, ch_out))
    assert "VAP305" in codes(found)


def test_vap302_no_bitstream_registered(ready):
    system, ch_in, ch_out = ready
    plan = make_plan(ch_in, ch_out, new_module="ghost")
    found = check_switch(system, plan)
    assert "VAP302" in codes(found)
    assert "VAP306" in codes(found)  # no factory either


def test_vap302_bitstream_not_preloaded_for_array2icap(ready):
    system, ch_in, ch_out = ready
    system.register_module("filterC", lambda: PassThrough("filterC"))
    plan = make_plan(ch_in, ch_out, new_module="filterC")
    found = [d for d in check_switch(system, plan) if d.code == "VAP302"]
    assert len(found) == 1
    assert "preload" in found[0].message


def test_cf2icap_needs_no_preload(ready):
    system, ch_in, ch_out = ready
    system.register_module("filterC", lambda: PassThrough("filterC"))
    plan = make_plan(ch_in, ch_out, new_module="filterC",
                     reconfig_path="cf2icap")
    assert "VAP302" not in codes(check_switch(system, plan))


def test_vap303_released_input_channel(ready):
    system, ch_in, ch_out = ready
    system.close_stream(ch_in)
    found = [d for d in check_switch(system, make_plan(ch_in, ch_out))
             if d.code == "VAP303"]
    assert any("released" in d.message for d in found)


def test_vap307_downstream_cannot_detect_eos(ready):
    system, ch_in, ch_out = ready
    plan = make_plan(ch_in, ch_out, downstream_slot="rsb0.prr1")
    found = [d for d in check_switch(system, plan) if d.code == "VAP307"]
    assert found and found[0].severity == "warning"


def test_vap308_target_already_occupied(ready):
    system, ch_in, ch_out = ready
    system.place_module_directly(PassThrough("tenant"), "rsb0.prr1")
    found = [d for d in check_switch(system, make_plan(ch_in, ch_out))
             if d.code == "VAP308"]
    assert found and "tenant" in found[0].message


def test_switcher_precheck_logs_to_trace(ready):
    from repro.core.switching import ModuleSwitcher

    system, ch_in, ch_out = ready
    switcher = ModuleSwitcher(system)
    generator = switcher.switch(
        old_prr="rsb0.prr1",  # empty: VAP304
        new_prr="rsb0.prr0",
        new_module="filterB",
        upstream_slot="rsb0.iom0",
        downstream_slot="rsb0.iom0",
        input_channel=ch_in,
        output_channel=ch_out,
    )
    # the precheck logs, then the switch itself rejects the empty PRR
    with pytest.raises(ValueError, match="no module to replace"):
        next(generator)
    assert any(
        entry.category == "verify" and "VAP304" in entry.message
        for entry in system.sim.trace
    )


def test_switcher_strict_precheck_raises(ready):
    from repro.core.switching import ModuleSwitcher

    system, ch_in, ch_out = ready
    switcher = ModuleSwitcher(system, strict_precheck=True)
    generator = switcher.switch(
        old_prr="rsb0.prr1",
        new_prr="rsb0.prr0",
        new_module="filterB",
        upstream_slot="rsb0.iom0",
        downstream_slot="rsb0.iom0",
        input_channel=ch_in,
        output_channel=ch_out,
    )
    with pytest.raises(VerificationError, match="VAP304"):
        next(generator)
