"""VAP5xx configuration-determinism lint."""

from repro.verify import Severity, check_config_determinism


def codes(findings):
    return sorted(finding.code for finding in findings)


def test_clean_seeded_spec_passes():
    spec = {
        "seed": 7,
        "seu_frames": 2,
        "jobs": [{"source": {"kind": "noise", "seed": 3}}],
    }
    assert check_config_determinism(spec) == []


def test_vap502_campaign_without_seed():
    findings = check_config_determinism(
        {"seu_frames": 1, "scrub_period_us": 100.0}, subject="campaign"
    )
    assert codes(findings) == ["VAP502"]
    assert findings[0].severity is Severity.ERROR
    assert findings[0].location == "campaign"


def test_vap502_non_integer_seed():
    for bad in ("7", 3.5, True, None):
        findings = check_config_determinism({"seed": bad})
        assert codes(findings) == ["VAP502"], bad
        assert findings[0].location == "config.seed"


def test_vap503_seed_placeholder_and_nondet_markers():
    findings = check_config_determinism({"seed": "random"})
    assert codes(findings) == ["VAP503"]

    findings = check_config_determinism(
        {"jobs": [{"name": "run-${RANDOM}"}]}, subject="jobfile"
    )
    assert codes(findings) == ["VAP503"]
    assert findings[0].location == "jobfile.jobs[0].name"

    findings = check_config_determinism({"stamp": "time.time()"})
    assert codes(findings) == ["VAP503"]


def test_vap501_unseeded_random_source_is_a_warning():
    spec = {"jobs": [{"source": {"kind": "noise", "count": 10}}]}
    findings = check_config_determinism(spec, subject="jobfile")
    assert codes(findings) == ["VAP501"]
    assert findings[0].severity is Severity.WARNING
    assert findings[0].location == "jobfile.jobs[0].source"
    # deterministic kinds need no seed
    assert check_config_determinism(
        {"jobs": [{"source": {"kind": "ramp", "count": 10}}]}
    ) == []


def test_findings_carry_the_determinism_analyzer_and_config_family():
    findings = check_config_determinism({"seu_frames": 1})
    assert findings[0].analyzer == "determinism"
    assert findings[0].family == "config"
