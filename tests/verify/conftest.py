"""Shared fixtures for the static-verification tests."""

from pathlib import Path

import pytest

from tests.helpers import build_pipeline

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def pipeline():
    """Prototype system with an IOM -> prr0 -> IOM streaming loop."""
    return build_pipeline()


def fixture_path(name: str) -> str:
    return str(FIXTURES / name)
