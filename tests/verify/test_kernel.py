"""Golden tests for the VAP4xx kernel determinism checks."""

from repro.modules import Iom, PassThrough
from repro.sim.fifo import SyncFifo
from repro.verify.kernel_check import DeterminismProbe, check_kernel


def codes(diagnostics):
    return {d.code for d in diagnostics}


class _Component:
    def __init__(self, name):
        self.name = name


def test_clean_pipeline_is_deterministic(pipeline):
    system, *_ = pipeline
    assert check_kernel(system) == []


def test_vap401_producer_shared_by_two_channels(pipeline):
    system, *_ = pipeline
    # a second channel from the IOM's (only) producer port
    system.open_stream("rsb0.iom0", "rsb0.prr1", src_port=0)
    found = [d for d in check_kernel(system) if d.code == "VAP401"]
    assert len(found) == 1
    assert found[0].severity == "error"
    assert "rsb0.iom0.p0" in found[0].location


def test_vap403_structural_sample_override(pipeline):
    system, *_ = pipeline

    class EagerIom(Iom):
        def sample(self):  # mutating here is the anti-pattern
            super().sample()

    system.slot("rsb0.iom0").iom = EagerIom("eager")
    found = [d for d in check_kernel(system) if d.code == "VAP403"]
    assert len(found) == 1
    assert "EagerIom" in found[0].message
    assert found[0].severity == "warning"


def test_probe_flags_two_components_in_one_sample_instant():
    probe = DeterminismProbe()
    probe.install()
    try:
        fifo = SyncFifo(8, name="shared.fifo")
        probe.begin(_Component("alpha"), "sample", 1_000)
        fifo.push(1)
        probe.end()
        probe.begin(_Component("beta"), "sample", 1_000)
        fifo.push(2)
        probe.end()
    finally:
        probe.uninstall()
    found = probe.diagnostics()
    assert codes(found) == {"VAP402"}
    assert "alpha" in found[0].message and "beta" in found[0].message


def test_probe_ignores_commit_phase_and_software_mutations():
    probe = DeterminismProbe()
    probe.install()
    try:
        fifo = SyncFifo(8, name="f")
        fifo.push(1)  # no phase bracket: software/event mutation
        probe.begin(_Component("a"), "commit", 500)
        fifo.push(2)
        probe.end()
    finally:
        probe.uninstall()
    assert probe.diagnostics() == []


def test_probe_flags_module_sample_writes_as_vap403():
    probe = DeterminismProbe()
    probe.install()
    try:
        fifo = SyncFifo(8, name="mod.fifo")
        probe.begin(PassThrough("worker"), "sample", 2_000)
        fifo.push(7)
        probe.end()
    finally:
        probe.uninstall()
    found = probe.diagnostics()
    assert "VAP403" in codes(found)
    assert any("worker" in d.message for d in found)


def test_probe_run_on_live_system_restores_everything(pipeline):
    system, *_ = pipeline
    push, pop, clear = SyncFifo.push, SyncFifo.pop, SyncFifo.clear
    found = check_kernel(system, probe_cycles=40)
    assert codes(found) == set()  # the stock pipeline has no races
    assert (SyncFifo.push, SyncFifo.pop, SyncFifo.clear) == (push, pop, clear)
    assert system.sim.phase_probe is None
