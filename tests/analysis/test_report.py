"""Unit tests for report formatting."""

from repro.analysis.report import PaperComparison, comparison_table, format_table


def test_format_table_alignment():
    text = format_table(
        ["name", "value"], [["a", 1], ["longer", 22]], title="t"
    )
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "name" in lines[1] and "value" in lines[1]
    assert all(len(line) == len(lines[1]) for line in lines[2:])


def test_paper_comparison_within_tolerance():
    comparison = PaperComparison("E-RT", "cf2icap", 1.043, 1.0431, "s")
    assert comparison.relative_error < 1e-3
    assert comparison.within_tolerance
    assert "OK" in comparison.row()


def test_paper_comparison_mismatch():
    comparison = PaperComparison("E-RES", "slices", 9421, 5000)
    assert not comparison.within_tolerance
    assert "MISMATCH" in comparison.row()


def test_paper_comparison_zero_paper_value():
    exact = PaperComparison("X", "lost words", 0, 0)
    assert exact.relative_error == 0.0
    wrong = PaperComparison("X", "lost words", 0, 3)
    assert wrong.relative_error == float("inf")


def test_comparison_table_renders_all_rows():
    table = comparison_table(
        [
            PaperComparison("A", "x", 1.0, 1.0),
            PaperComparison("B", "y", 2.0, 3.0),
        ],
        title="paper vs measured",
    )
    assert "paper vs measured" in table
    assert table.count("\n") >= 3
