"""Unit tests for the first-order power model."""

import pytest

from repro.analysis.power import (
    ModulePower,
    module_power,
    system_power_report,
    total_dynamic_mw,
)
from repro.modules.filters import MovingAverage
from repro.modules.sources import ramp
from repro.modules.transforms import PassThrough

from tests.helpers import build_pipeline, build_system


def test_gated_clock_is_zero_power():
    power = ModulePower("p", "m", 100, 100.0, 1.0, clock_gated=True)
    assert power.dynamic_mw == 0.0


def test_power_scales_with_frequency_and_activity():
    base = ModulePower("p", "m", 100, 100.0, 1.0, False)
    half_freq = ModulePower("p", "m", 100, 50.0, 1.0, False)
    half_active = ModulePower("p", "m", 100, 100.0, 0.5, False)
    assert base.dynamic_mw == pytest.approx(2 * half_freq.dynamic_mw)
    assert base.dynamic_mw == pytest.approx(2 * half_active.dynamic_mw)


def test_module_power_from_live_slot():
    system, iom, module, _, _ = build_pipeline(source=ramp(count=500))
    system.run_for_cycles(600)
    slot = system.prr("rsb0.prr0")
    power = module_power(slot)
    assert power.module_name == "ident"
    assert 0.5 < power.activity <= 1.0  # streaming most cycles
    assert power.dynamic_mw > 0
    assert power.frequency_mhz == 100.0


def test_empty_slot_rejected():
    system = build_system()
    with pytest.raises(ValueError, match="no resident module"):
        module_power(system.prr("rsb0.prr0"))


def test_idle_module_has_zero_activity():
    system = build_system()
    system.place_module_directly(PassThrough("idle"), "rsb0.prr0")
    system.run_for_cycles(200)
    power = module_power(system.prr("rsb0.prr0"))
    assert power.activity == 0.0
    assert power.dynamic_mw == 0.0


def test_halving_lcd_halves_power():
    system, iom, module, _, _ = build_pipeline(source=ramp(count=100_000))
    system.run_for_cycles(500)
    slot = system.prr("rsb0.prr0")
    fast = module_power(slot).dynamic_mw
    slot.bufgmux.select(1)
    # restart activity window: use a fresh module measurement by running on
    module.samples_in = 0
    module.lcd_cycles = 0
    system.run_for_cycles(500)
    slow = module_power(slot).dynamic_mw
    assert fast / slow == pytest.approx(2.0, rel=0.15)


def test_system_report_covers_occupied_slots_only():
    system = build_system()
    system.place_module_directly(MovingAverage("avg", window=2), "rsb0.prr0")
    report = system_power_report(system)
    assert set(report) == {"rsb0.prr0"}
    assert total_dynamic_mw(system) == report["rsb0.prr0"].dynamic_mw


def test_spanning_module_counted_once():
    from repro.core import RsbParameters, SpanningRegion, SystemParameters, VapresSystem

    params = SystemParameters(
        board="ML402",
        rsbs=[
            RsbParameters(name="rsb0", num_prrs=2, num_ioms=1, iom_positions=[0])
        ],
    )
    system = VapresSystem(params)
    span = SpanningRegion(system, ["rsb0.prr0", "rsb0.prr1"])
    span.load(PassThrough("big"))
    report = system_power_report(system)
    assert list(report) == ["rsb0.prr0"]  # primary only, no double count


def test_power_row_renders():
    power = ModulePower("rsb0.prr0", "fir", 300, 100.0, 0.75, False)
    row = power.row()
    assert row[0] == "rsb0.prr0"
    assert "0.75" in row
