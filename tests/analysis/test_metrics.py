"""Unit tests for stream metrics."""

import pytest

from repro.analysis.metrics import (
    gap_histogram,
    interruption_report,
    max_gap_seconds,
    stream_gaps_seconds,
    throughput_words_per_s,
)

PS = 1_000_000  # 1 us in ps


def test_gaps():
    times = [0, 1 * PS, 3 * PS, 6 * PS]
    assert stream_gaps_seconds(times) == pytest.approx([1e-6, 2e-6, 3e-6])


def test_max_gap_empty_and_single():
    assert max_gap_seconds([]) == 0.0
    assert max_gap_seconds([5]) == 0.0


def test_max_gap():
    assert max_gap_seconds([0, PS, 10 * PS]) == pytest.approx(9e-6)


def test_throughput():
    assert throughput_words_per_s(100, int(1e12)) == pytest.approx(100.0)
    assert throughput_words_per_s(100, 0) == 0.0


def test_interruption_report_smooth_stream():
    times = [i * PS for i in range(100)]
    report = interruption_report(times, nominal_period_s=1e-6)
    assert report.max_gap_s == pytest.approx(1e-6)
    assert report.interruption_s == pytest.approx(0.0)
    assert not report.interrupted


def test_interruption_report_with_stall():
    times = [0, PS, 2 * PS, 200 * PS, 201 * PS]
    report = interruption_report(times, nominal_period_s=1e-6)
    assert report.max_gap_s == pytest.approx(198e-6)
    assert report.interrupted
    assert "max gap" in str(report)


def test_gap_histogram():
    times = [0, PS, 2 * PS, 5 * PS]
    histogram = gap_histogram(times, bucket_s=1e-6)
    assert histogram[1] == 2
    assert histogram[3] == 1


def test_interrupted_factor_default_is_ten_periods():
    # a 9-period gap is under the 10x default; 11 periods is over
    times = [0, PS, 10 * PS]  # 9-period gap
    report = interruption_report(times, nominal_period_s=1e-6)
    assert report.interrupted_factor == 10.0
    assert not report.interrupted
    report = interruption_report([0, PS, 12 * PS], nominal_period_s=1e-6)
    assert report.interrupted


def test_interrupted_factor_tightened():
    """A strict SLO flags gaps the default factor tolerates."""
    times = [0, PS, 5 * PS]  # 4-period gap
    lenient = interruption_report(times, nominal_period_s=1e-6)
    strict = interruption_report(
        times, nominal_period_s=1e-6, interrupted_factor=3.0
    )
    assert not lenient.interrupted
    assert strict.interrupted
    assert strict.max_gap_s == lenient.max_gap_s  # only the verdict moves


def test_interrupted_factor_loosened():
    """A relaxed SLO forgives a stall the default factor flags."""
    times = [0, PS, 2 * PS, 200 * PS, 201 * PS]  # 198-period stall
    report = interruption_report(
        times, nominal_period_s=1e-6, interrupted_factor=500.0
    )
    assert report.interrupted_factor == 500.0
    assert not report.interrupted
