"""Unit tests for trace utilities."""

from repro.analysis.trace import events_between, format_trace, switch_step_table
from repro.core.switching import SwitchReport
from repro.sim.kernel import Simulator


def make_trace():
    sim = Simulator()
    sim.log("a", "first")
    sim.schedule(100, lambda: sim.log("b", "second", k=1))
    sim.schedule(200, lambda: sim.log("a", "third"))
    sim.run()
    return sim.trace


def test_format_trace_all():
    text = format_trace(make_trace())
    assert "first" in text and "third" in text


def test_format_trace_filtered_and_limited():
    trace = make_trace()
    only_a = format_trace(trace, categories=["a"])
    assert "second" not in only_a
    limited = format_trace(trace, limit=1)
    assert limited.count("\n") == 0


def test_format_trace_limit_applies_after_category_filter():
    trace = make_trace()
    # two "a" events exist; limit counts filtered events, not raw ones
    text = format_trace(trace, categories=["a"], limit=2)
    assert "first" in text and "third" in text and "second" not in text


def test_format_trace_tail_keeps_last_events():
    trace = make_trace()
    tailed = format_trace(trace, limit=1, tail=True)
    assert "third" in tailed and "first" not in tailed


def test_format_trace_sorts_by_time_then_seq():
    sim = Simulator()
    sim.log("x", "early")
    sim.log("x", "late")  # same simulated time, higher seq
    lines = format_trace(sim.trace).splitlines()
    assert "early" in lines[0] and "late" in lines[1]
    # shuffled input renders identically
    assert format_trace(list(reversed(sim.trace))) == format_trace(sim.trace)


def test_events_between():
    trace = make_trace()
    middle = events_between(trace, 50, 150)
    assert [e.message for e in middle] == ["second"]


def test_switch_step_table():
    report = SwitchReport("prr0", "prr1", "filterB")
    report.steps = [(1, 0, "start"), (9, 5_000_000, "done")]
    table = switch_step_table(report)
    assert "step" in table
    assert "filterB@prr1" in table
    assert "done" in table
