"""CLI tests for ``python -m repro serve``."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture()
def tiny_jobfile(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps({
        "system": {"preset": "prototype", "pr_speedup": 20000.0},
        "mode": "fleet",
        "executor": {"quantum_us": 10.0, "max_us": 5000.0},
        "jobs": [
            {"name": "a", "source": {"kind": "ramp", "count": 60}},
            {"name": "b", "stages": ["abs"],
             "source": {"kind": "sine", "count": 80}},
        ],
    }))
    return str(path)


def test_serve_text_report(tiny_jobfile, capsys):
    assert main(["serve", tiny_jobfile]) == 0
    out = capsys.readouterr().out
    assert "mode=fleet" in out
    assert "DONE=2" in out


def test_serve_json_report(tiny_jobfile, capsys):
    assert main(["serve", tiny_jobfile, "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["states"] == {"DONE": 2}
    names = [job["name"] for job in report["jobs"]]
    assert names == ["a", "b"]
    assert all(job["throughput_words_per_s"] > 0 for job in report["jobs"])
    assert all(job["max_gap_us"] >= 0 for job in report["jobs"])


def test_serve_saves_report(tiny_jobfile, tmp_path, capsys):
    out_path = tmp_path / "report.json"
    assert main(["serve", tiny_jobfile, "--output", str(out_path)]) == 0
    saved = json.loads(out_path.read_text())
    assert saved["states"] == {"DONE": 2}


def test_serve_mode_and_workers_overrides(tiny_jobfile, capsys):
    assert main(["serve", tiny_jobfile, "--mode", "colocate"]) == 0
    assert "mode=colocate" in capsys.readouterr().out


def test_serve_missing_jobfile_is_a_usage_error(capsys):
    assert main(["serve", "no/such/file.json"]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_serve_failed_job_sets_exit_code(tmp_path, capsys):
    path = tmp_path / "fail.json"
    path.write_text(json.dumps({
        "system": {"preset": "prototype", "pr_speedup": 20000.0},
        "executor": {"quantum_us": 10.0, "max_us": 5000.0},
        "jobs": [
            {"name": "rushed", "deadline_us": 30.0,
             "source": {"kind": "ramp", "count": 500000}},
        ],
    }))
    assert main(["serve", str(path)]) == 1
    assert "deadline" in capsys.readouterr().out
