"""CLI tests for ``python -m repro serve``."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture()
def tiny_jobfile(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps({
        "system": {"preset": "prototype", "pr_speedup": 20000.0},
        "mode": "fleet",
        "executor": {"quantum_us": 10.0, "max_us": 5000.0},
        "jobs": [
            {"name": "a", "source": {"kind": "ramp", "count": 60}},
            {"name": "b", "stages": ["abs"],
             "source": {"kind": "sine", "count": 80}},
        ],
    }))
    return str(path)


def test_serve_text_report(tiny_jobfile, capsys):
    assert main(["serve", tiny_jobfile]) == 0
    out = capsys.readouterr().out
    assert "mode=fleet" in out
    assert "DONE=2" in out


def test_serve_json_report(tiny_jobfile, capsys):
    assert main(["serve", tiny_jobfile, "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["states"] == {"DONE": 2}
    names = [job["name"] for job in report["jobs"]]
    assert names == ["a", "b"]
    assert all(job["throughput_words_per_s"] > 0 for job in report["jobs"])
    assert all(job["max_gap_us"] >= 0 for job in report["jobs"])


def test_serve_saves_report(tiny_jobfile, tmp_path, capsys):
    out_path = tmp_path / "report.json"
    assert main(["serve", tiny_jobfile, "--output", str(out_path)]) == 0
    saved = json.loads(out_path.read_text())
    assert saved["states"] == {"DONE": 2}


def test_serve_mode_and_workers_overrides(tiny_jobfile, capsys):
    assert main(["serve", tiny_jobfile, "--mode", "colocate"]) == 0
    assert "mode=colocate" in capsys.readouterr().out


def test_serve_missing_jobfile_is_a_usage_error(capsys):
    assert main(["serve", "no/such/file.json"]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_serve_failed_job_sets_exit_code(tmp_path, capsys):
    path = tmp_path / "fail.json"
    path.write_text(json.dumps({
        "system": {"preset": "prototype", "pr_speedup": 20000.0},
        "executor": {"quantum_us": 10.0, "max_us": 5000.0},
        "jobs": [
            {"name": "rushed", "deadline_us": 30.0,
             "source": {"kind": "ramp", "count": 500000}},
        ],
    }))
    assert main(["serve", str(path)]) == 1
    assert "deadline" in capsys.readouterr().out


# ----------------------------------------------------------------------
# strict exit codes: terminal eviction and --fail-fast
# ----------------------------------------------------------------------
def _eviction_jobfile(tmp_path, requeue):
    path = tmp_path / "evict.json"
    path.write_text(json.dumps({
        "system": {"preset": "figure7", "pr_speedup": 20000.0},
        "mode": "colocate",
        "executor": {"quantum_us": 10.0, "max_us": 5000.0},
        "jobs": [
            {"name": "keeper", "priority": 5, "preemptible": False,
             "stages": [{"kind": "moving_average", "window": 4}],
             "source": {"kind": "sine", "count": 4000}},
            {"name": "victim", "priority": 1,
             "requeue_on_eviction": requeue,
             "stages": ["crc32"],
             "source": {"kind": "ramp", "count": 4000}},
            {"name": "urgent", "priority": 5, "arrival_us": 25.0,
             "source": {"kind": "ramp", "count": 200}},
        ],
    }))
    return str(path)


def test_serve_terminal_eviction_exits_nonzero(tmp_path, capsys):
    jobfile = _eviction_jobfile(tmp_path, requeue=False)
    assert main(["serve", jobfile]) == 1
    err = capsys.readouterr().err
    assert "requeue_on_eviction" in err  # the fix is named in the hint


def test_serve_requeued_eviction_exits_zero(tmp_path, capsys):
    jobfile = _eviction_jobfile(tmp_path, requeue=True)
    assert main(["serve", jobfile]) == 0
    assert "DONE=3" in capsys.readouterr().out


def test_serve_fail_fast_flag_aborts_run(tmp_path, capsys):
    path = tmp_path / "ff.json"
    path.write_text(json.dumps({
        "system": {"preset": "prototype", "pr_speedup": 20000.0},
        "mode": "fleet",
        "executor": {"quantum_us": 10.0, "max_us": 5000.0},
        "jobs": [
            {"name": "rushed", "deadline_us": 30.0,
             "source": {"kind": "ramp", "count": 500000}},
            {"name": "casualty", "source": {"kind": "ramp", "count": 100}},
        ],
    }))
    assert main(["serve", str(path), "--json", "--fail-fast"]) == 1
    report = json.loads(capsys.readouterr().out)
    by_name = {job["name"]: job for job in report["jobs"]}
    assert "aborted by fail-fast" in by_name["casualty"]["failure_reason"]
    # without the flag the healthy job completes (and the exit code
    # still reflects the failed one)
    assert main(["serve", str(path), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    by_name = {job["name"]: job for job in report["jobs"]}
    assert by_name["casualty"]["state"] == "DONE"


# ----------------------------------------------------------------------
# submit (front-door client) usage errors
# ----------------------------------------------------------------------
def test_submit_bad_address_is_usage_error(tiny_jobfile, capsys):
    assert main(["submit", tiny_jobfile, "--connect", "nowhere"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err


def test_submit_connection_refused_is_reported(tiny_jobfile, capsys):
    # an ephemeral port nothing listens on
    assert main(["submit", tiny_jobfile, "--connect", "127.0.0.1:9"]) == 2
    assert "127.0.0.1:9" in capsys.readouterr().err


def test_serve_listen_rejects_bad_hostport(tiny_jobfile, capsys):
    assert main(["serve", tiny_jobfile, "--listen", "8080"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err
