"""End-to-end tests for the colocated executor and the fleet.

These run real simulations (MicroBlaze software, ICAP reconfiguration,
switch-box channels), so sources are kept small.
"""

from dataclasses import replace

import pytest

from repro.core.params import SystemParameters
from repro.runtime import (
    ExecutorConfig,
    FleetExecutor,
    JobError,
    JobExecutor,
    SourceSpec,
    StageSpec,
    StreamJob,
)

FAST = replace(SystemParameters.prototype(), pr_speedup=20_000.0)
FAST_FIG7 = replace(SystemParameters.figure7(), pr_speedup=20_000.0)
CONFIG = ExecutorConfig(quantum_us=10.0, max_us=5_000.0)


def ramp_job(name, count=120, **kwargs):
    return StreamJob(
        name=name,
        stages=kwargs.pop("stages", [StageSpec("passthrough")]),
        source=SourceSpec("ramp", count=count),
        **kwargs,
    )


def run_colocated(jobs, params=FAST, **kwargs):
    executor = JobExecutor(params=params, config=CONFIG, **kwargs)
    return executor.run(jobs), executor


# ----------------------------------------------------------------------
def test_single_job_runs_to_done():
    report, executor = run_colocated([ramp_job("solo")])
    job = report.job("solo")
    assert job.state == "DONE"
    assert job.words_out == 120
    assert job.throughput_words_per_s > 0
    assert not job.interrupted
    assert report.ok
    assert 0 < report.icap_busy_fraction <= 1.0


def test_multi_stage_chain_produces_output():
    report, _ = run_colocated([
        ramp_job("twostage", stages=[StageSpec("abs"), StageSpec("scaler")]),
    ])
    job = report.job("twostage")
    assert job.state == "DONE"
    assert job.stages == 2
    assert job.words_out > 0


def test_two_jobs_share_system_serially():
    """One IOM: the second job waits for the first to finish."""
    report, _ = run_colocated([
        ramp_job("front", count=150),
        ramp_job("back", count=100),
    ])
    assert report.states == {"DONE": 2}
    back = report.job("back")
    assert back.queue_wait_us > 0  # had to wait for the IOM


def test_preemption_evicts_and_preserves_survivor():
    """Figure-5 drain: the victim is evicted mid-stream, the surviving
    high-priority stream sees no interruption."""
    jobs = [
        StreamJob(
            name="keeper", priority=5, preemptible=False,
            stages=[StageSpec("moving_average")],
            source=SourceSpec("sine", count=4000),
        ),
        StreamJob(
            name="victim", priority=1,
            stages=[StageSpec("crc32")],
            source=SourceSpec("ramp", count=4000),
        ),
        StreamJob(
            name="urgent", priority=5, arrival_us=25.0,
            stages=[StageSpec("passthrough")],
            source=SourceSpec("ramp", count=200),
        ),
    ]
    executor = JobExecutor(params=FAST_FIG7, config=CONFIG)
    report = executor.run(jobs)
    assert executor.preemptions == 1
    victim = report.job("victim")
    assert victim.state == "EVICTED"
    assert victim.evictions == 1
    assert victim.drained  # went through the Figure-5 drain path
    assert victim.state_words == 1  # crc32 checkpointed its register
    assert "evicted by higher-priority job 'urgent'" in victim.failure_reason
    keeper = report.job("keeper")
    assert keeper.state == "DONE"
    assert not keeper.interrupted  # zero-interruption survivor
    assert report.job("urgent").state == "DONE"


def test_requeue_on_eviction_runs_again():
    jobs = [
        StreamJob(
            name="patient", priority=1, requeue_on_eviction=True,
            stages=[StageSpec("passthrough")],
            source=SourceSpec("ramp", count=2500),
        ),
        StreamJob(
            name="vip", priority=9, arrival_us=15.0,
            stages=[StageSpec("passthrough")],
            source=SourceSpec("ramp", count=150),
        ),
    ]
    report, executor = run_colocated(jobs)  # prototype: single IOM
    assert executor.preemptions == 1
    patient = report.job("patient")
    assert patient.state == "DONE"  # evicted, requeued, finished
    assert patient.evictions == 1
    assert report.job("vip").state == "DONE"


def test_deadline_miss_fails_job():
    report, _ = run_colocated([
        ramp_job("rushed", count=50_000, deadline_us=60.0),
    ])
    job = report.job("rushed")
    assert job.state == "FAILED"
    assert "deadline" in job.failure_reason
    assert not report.ok


def test_infeasible_job_rejected_not_hung():
    report, _ = run_colocated([
        ramp_job("whale", stages=[StageSpec("abs")] * 3),  # 3 > 2 PRRs
        ramp_job("minnow", count=80),
    ])
    whale = report.job("whale")
    assert whale.state == "FAILED"
    assert "rejected at admission" in whale.failure_reason
    assert report.job("minnow").state == "DONE"


def test_budget_exhaustion_fails_stragglers():
    config = ExecutorConfig(quantum_us=10.0, max_us=120.0)
    executor = JobExecutor(params=FAST, config=config)
    report = executor.run([ramp_job("endless", count=1_000_000)])
    job = report.job("endless")
    assert job.state == "FAILED"
    assert "budget" in job.failure_reason


def test_executor_config_validation():
    with pytest.raises(JobError):
        ExecutorConfig(quantum_us=0.0)
    with pytest.raises(JobError):
        ExecutorConfig.from_dict({"quantum_us": 10.0, "warp": 9})


# ----------------------------------------------------------------------
# fleet
# ----------------------------------------------------------------------
def test_fleet_merges_in_submission_order():
    jobs = [ramp_job(f"job{i}", count=80 + 10 * i) for i in range(5)]
    fleet = FleetExecutor(
        workers=3, params=FAST, config=CONFIG, use_processes=False
    )
    report = fleet.run(jobs)
    assert [j.name for j in report.jobs] == [f"job{i}" for i in range(5)]
    assert report.states == {"DONE": 5}
    assert {j.shard for j in report.jobs} == {0, 1, 2}


def test_fleet_rejects_duplicate_names():
    fleet = FleetExecutor(workers=2, params=FAST, use_processes=False)
    with pytest.raises(JobError, match="unique"):
        fleet.run([ramp_job("dup"), ramp_job("dup")])


def test_fleet_worker_count_is_clamped():
    fleet = FleetExecutor(workers=8, params=FAST, config=CONFIG,
                          use_processes=False)
    report = fleet.run([ramp_job("only", count=60)])
    assert report.workers == 1  # one job, one shard
    with pytest.raises(JobError):
        FleetExecutor(workers=0)


def test_fleet_real_processes_match_inline():
    """Real multiprocessing returns the same reports as in-process."""
    jobs = [ramp_job(f"p{i}", count=60) for i in range(4)]
    inline = FleetExecutor(
        workers=2, params=FAST, config=CONFIG, use_processes=False
    ).run(jobs)
    forked = FleetExecutor(
        workers=2, params=FAST, config=CONFIG, use_processes=True
    ).run(jobs)
    for a, b in zip(inline.jobs, forked.jobs):
        da, db = a.to_dict(), b.to_dict()
        assert da == db


# ----------------------------------------------------------------------
# fail-fast and the first-sample hook
# ----------------------------------------------------------------------
def test_fail_fast_colocate_aborts_remaining_jobs():
    jobs = [
        ramp_job("rushed", count=500_000, deadline_us=30.0),
        ramp_job("casualty", count=4000),
    ]
    config = replace(CONFIG, fail_fast=True)
    executor = JobExecutor(params=FAST, config=config)
    report = executor.run(jobs)
    assert report.job("rushed").state == "FAILED"
    casualty = report.job("casualty")
    assert casualty.state == "FAILED"
    assert "aborted by fail-fast" in casualty.failure_reason
    assert "rushed" in casualty.failure_reason
    assert not report.strict_ok


def test_fail_fast_fleet_skips_rest_of_shard():
    jobs = [
        ramp_job("rushed", count=500_000, deadline_us=30.0),
        ramp_job("never-ran", count=100),
    ]
    config = replace(CONFIG, fail_fast=True)
    fleet = FleetExecutor(
        workers=1, params=FAST, config=config, use_processes=False
    )
    report = fleet.run(jobs)
    skipped = report.job("never-ran")
    assert skipped.state == "FAILED"
    assert "aborted by fail-fast" in skipped.failure_reason
    assert skipped.words_out == 0  # synthesised report; job never ran


def test_without_fail_fast_survivors_complete():
    jobs = [
        ramp_job("rushed", count=500_000, deadline_us=30.0),
        ramp_job("survivor", count=100),
    ]
    fleet = FleetExecutor(
        workers=1, params=FAST, config=CONFIG, use_processes=False
    )
    report = fleet.run(jobs)
    assert report.job("rushed").state == "FAILED"
    assert report.job("survivor").state == "DONE"


def test_strict_ok_counts_terminal_eviction_as_failure():
    jobs = [
        StreamJob(
            name="keeper", priority=5, preemptible=False,
            stages=[StageSpec("moving_average")],
            source=SourceSpec("sine", count=4000),
        ),
        StreamJob(
            name="victim", priority=1,
            stages=[StageSpec("crc32")],
            source=SourceSpec("ramp", count=4000),
        ),
        StreamJob(
            name="urgent", priority=5, arrival_us=25.0,
            stages=[StageSpec("passthrough")],
            source=SourceSpec("ramp", count=200),
        ),
    ]
    executor = JobExecutor(params=FAST_FIG7, config=CONFIG)
    report = executor.run(jobs)
    assert report.job("victim").state == "EVICTED"
    assert report.ok          # eviction is policy...
    assert not report.strict_ok  # ...but strict callers refuse it


def test_on_first_sample_hook_fires_once_per_job():
    seen = []
    executor = JobExecutor(params=FAST, config=CONFIG)
    executor.on_first_sample = lambda job: seen.append(job.spec.name)
    report = executor.run([ramp_job("a", count=200), ramp_job("b", count=200)])
    assert report.states == {"DONE": 2}
    assert sorted(seen) == ["a", "b"]
