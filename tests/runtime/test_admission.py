"""Unit tests for the admission controller: feasibility, budgets,
priority queueing, backfill and preemption planning."""


from repro.compact import churn_params
from repro.core.params import SystemParameters
from repro.runtime.admission import AdmissionController, AdmissionDecision
from repro.runtime.jobs import Job, JobState, StageSpec, StreamJob


def make_controller(preset="prototype", **kwargs):
    params = getattr(SystemParameters, preset)()
    return AdmissionController(params, **kwargs)


def make_job(name, stages=1, index=0, **spec_kwargs):
    spec = StreamJob(
        name=name,
        stages=[StageSpec("passthrough") for _ in range(stages)],
        **spec_kwargs,
    )
    return Job(spec, index=index)


def admit(controller, job, now=0.0):
    """enqueue + next_decision + occupy, as the executor would."""
    result = controller.enqueue(job, now)
    assert result.decision is AdmissionDecision.QUEUE
    pick = controller.next_decision(now, [])
    assert pick is not None and pick[0] is job
    controller.occupy(job, pick[1].assignment)
    job.assignment = pick[1].assignment
    job.transition(JobState.ADMITTED, now)
    return pick[1].assignment


# ----------------------------------------------------------------------
# feasibility (REJECT at enqueue)
# ----------------------------------------------------------------------
def test_rejects_job_with_more_stages_than_prrs():
    controller = make_controller()  # prototype: 2 PRRs
    result = controller.enqueue(make_job("big", stages=3))
    assert result.decision is AdmissionDecision.REJECT
    assert "3 PRRs" in result.reason


def test_rejects_unknown_slots():
    controller = make_controller()
    result = controller.enqueue(
        make_job("ghost", prrs=["rsb9.prr9"], iom=None)
    )
    assert result.decision is AdmissionDecision.REJECT
    assert "unknown PRR" in result.reason
    result = controller.enqueue(make_job("ghost2", iom="rsb9.iom0"))
    assert "unknown IOM" in result.reason


def test_rejects_oversized_stage_demand():
    controller = make_controller()
    result = controller.enqueue(make_job("huge", slices_per_stage=10_000_000))
    assert result.decision is AdmissionDecision.REJECT


# ----------------------------------------------------------------------
# assignment
# ----------------------------------------------------------------------
def test_assigns_nearest_free_prr_and_iom():
    controller = make_controller()
    assignment = admit(controller, make_job("a"))
    assert assignment.iom == "rsb0.iom0"
    assert assignment.prrs == ["rsb0.prr0"]  # position 1, next to the IOM
    assert assignment.chain == ["rsb0.iom0", "rsb0.prr0", "rsb0.iom0"]


def test_honours_explicit_placement():
    controller = make_controller()
    assignment = admit(
        controller, make_job("pinned", prrs=["rsb0.prr1"], iom="rsb0.iom0")
    )
    assert assignment.prrs == ["rsb0.prr1"]


def test_multi_stage_chain_spans_prrs():
    controller = make_controller()
    assignment = admit(controller, make_job("chain", stages=2))
    assert assignment.prrs == ["rsb0.prr0", "rsb0.prr1"]
    assert assignment.chain[0] == assignment.chain[-1] == "rsb0.iom0"


def test_queue_blocks_when_iom_busy_and_frees_on_release():
    controller = make_controller()  # prototype has a single IOM
    first = make_job("first")
    admit(controller, first)
    second = make_job("second", index=1)
    controller.enqueue(second)
    assert controller.next_decision(0.0, [first]) is None
    controller.release(first)
    pick = controller.next_decision(0.0, [])
    assert pick is not None and pick[0] is second


def test_arrival_time_gates_admission():
    controller = make_controller()
    late = make_job("late", arrival_us=100.0)
    controller.enqueue(late, 0.0)
    assert controller.next_decision(50.0, []) is None
    assert controller.next_decision(150.0, []) is not None


def test_priority_orders_queue_and_backfill():
    controller = make_controller(preset="figure7")
    blocker_hi = make_job("hi", stages=4, priority=9)  # wants all 4 PRRs
    resident = make_job("res", index=1)
    admit(controller, resident)  # occupies one PRR + one IOM
    controller.enqueue(blocker_hi)
    small_lo = make_job("lo", index=2, priority=1)
    controller.enqueue(small_lo)
    # head-of-line high-priority job cannot fit; the small job backfills
    pick = controller.next_decision(0.0, [resident])
    assert pick is not None
    assert pick[0] is small_lo
    assert pick[1].decision is AdmissionDecision.ADMIT


# ----------------------------------------------------------------------
# preemption planning
# ----------------------------------------------------------------------
def test_preemption_names_lower_priority_victims():
    controller = make_controller()  # single IOM forces the conflict
    victim = make_job("victim", priority=1)
    admit(controller, victim)
    victim.transition(JobState.PLACING, 0.0)
    victim.transition(JobState.RUNNING, 0.0)
    urgent = make_job("urgent", index=1, priority=5)
    controller.enqueue(urgent)
    pick = controller.next_decision(1.0, [victim])
    assert pick is not None
    job, result = pick
    assert job is urgent
    assert result.decision is AdmissionDecision.PREEMPT
    assert result.victims == [victim]
    # after the executor evicts+releases, the urgent job admits
    controller.release(victim)
    pick = controller.next_decision(1.0, [])
    assert pick[0] is urgent
    assert pick[1].decision is AdmissionDecision.ADMIT


def test_no_preemption_of_equal_or_higher_priority():
    controller = make_controller()
    resident = make_job("resident", priority=5)
    admit(controller, resident)
    rival = make_job("rival", index=1, priority=5)
    controller.enqueue(rival)
    assert controller.next_decision(0.0, [resident]) is None


def test_unpreemptible_jobs_are_safe():
    controller = make_controller()
    shielded = make_job("shielded", priority=0, preemptible=False)
    admit(controller, shielded)
    urgent = make_job("urgent", index=1, priority=9)
    controller.enqueue(urgent)
    assert controller.next_decision(0.0, [shielded]) is None


def test_preemption_disabled_by_flag():
    controller = make_controller(allow_preemption=False)
    victim = make_job("victim", priority=1)
    admit(controller, victim)
    urgent = make_job("urgent", index=1, priority=5)
    controller.enqueue(urgent)
    assert controller.next_decision(0.0, [victim]) is None


def test_victim_set_is_minimal():
    controller = make_controller(preset="figure7")  # 2 IOMs
    old = make_job("old", priority=1)
    admit(controller, old, now=0.0)
    young = make_job("young", index=1, priority=2)
    admit(controller, young, now=5.0)
    urgent = make_job("urgent", index=2, priority=9)
    controller.enqueue(urgent, 10.0)
    pick = controller.next_decision(10.0, [old, young])
    assert pick is not None
    _, result = pick
    assert result.decision is AdmissionDecision.PREEMPT
    assert len(result.victims) == 1  # one freed IOM suffices
    assert result.victims[0] is old  # lowest priority goes first


# ----------------------------------------------------------------------
# budget accounting
# ----------------------------------------------------------------------
def test_release_returns_resources():
    controller = make_controller()
    job = make_job("cycle")
    for _ in range(3):  # admit/release must not leak lanes or slots
        assignment = admit(controller, job)
        assert assignment is not None
        controller.release(job)
        job = Job(job.spec, index=job.index)  # fresh lifecycle

def test_used_vector_tracks_residency():
    controller = make_controller()
    before = controller.used.slices
    job = make_job("acct", slices_per_stage=100)
    admit(controller, job)
    assert controller.used.slices == before + 100
    controller.release(job)
    assert controller.used.slices == before


# ----------------------------------------------------------------------
# quarantine release (scrub-verified recovery) and queue withdrawal
# ----------------------------------------------------------------------
def test_release_quarantine_restores_capacity_and_free_pool():
    controller = make_controller()
    prr = controller.prr_names[0]
    full = controller.capacity
    controller.quarantine(prr)
    assert controller.capacity.slices < full.slices
    assert prr in controller.quarantined_prrs
    assert controller.release_quarantine(prr)
    assert controller.capacity == full
    assert prr not in controller.quarantined_prrs
    # assignable again: a 2-stage job needs both prototype PRRs
    assignment = admit(controller, make_job("wide", stages=2))
    assert prr in assignment.prrs


def test_release_quarantine_noop_cases():
    controller = make_controller()
    assert not controller.release_quarantine("rsb0.prr0")  # never retired
    assert not controller.release_quarantine("rsb9.prr9")  # unknown
    controller.quarantine("rsb0.prr0")
    assert controller.release_quarantine("rsb0.prr0")
    assert not controller.release_quarantine("rsb0.prr0")  # not idempotent


def test_release_quarantine_keeps_faulted_prr_unassignable():
    controller = make_controller()
    prr = controller.prr_names[0]
    controller.quarantine(prr)
    controller.mark_faulted(prr)
    assert controller.release_quarantine(prr)
    # budget is back but the PRR still needs a frame repair first
    result = controller.enqueue(make_job("wide", stages=2))
    assert result.decision is AdmissionDecision.QUEUE
    assert controller.next_decision(0.0, []) is None
    controller.mark_repaired(prr)
    assert controller.next_decision(0.0, []) is not None


def test_release_quarantine_does_not_free_resident_prr():
    controller = make_controller()
    job = make_job("tenant")
    assignment = admit(controller, job)
    prr = assignment.prrs[0]
    controller.quarantine(prr)
    assert controller.release_quarantine(prr)
    # the PRR is still occupied by the resident job, not free
    assert prr not in getattr(controller, "_free_prrs")
    controller.release(job)
    assert prr in getattr(controller, "_free_prrs")


def test_withdraw_removes_only_queued_jobs():
    controller = make_controller()
    queued = make_job("queued")
    controller.enqueue(queued)
    assert controller.queue_depth == 1
    assert controller.withdraw(queued)
    assert controller.queue_depth == 0
    assert not controller.withdraw(queued)  # already gone
    resident = make_job("resident")
    admit(controller, resident)
    assert not controller.withdraw(resident)  # admitted, not queued


# ----------------------------------------------------------------------
# block classification (capacity vs fragmentation) and reject reasons
# ----------------------------------------------------------------------
def churn_controller():
    return AdmissionController(churn_params())


def test_classify_block_none_when_assignable():
    controller = make_controller()
    assert controller.classify_block(make_job("fits")) is None


def test_classify_block_capacity_on_busy_iom():
    controller = churn_controller()
    admit(controller, make_job("holder", iom="rsb0.iom0"))
    waiter = make_job("waiter", index=1, iom="rsb0.iom0")
    block = controller.classify_block(waiter)
    assert block is not None
    assert block.kind == "capacity"
    assert block.detail.startswith("capacity:")
    assert "rsb0.iom0" in block.detail
    assert "largest free PRR run" in block.detail


def test_classify_block_capacity_on_busy_pinned_prr():
    controller = churn_controller()
    admit(
        controller,
        make_job("tenant", iom="rsb0.iom0", prrs=["rsb0.prr3"]),
    )
    rival = make_job(
        "rival", index=1, iom="rsb0.iom1", prrs=["rsb0.prr3"]
    )
    block = controller.classify_block(rival)
    assert block is not None
    assert block.kind == "capacity"
    assert "pinned PRR" in block.detail
    assert "largest free PRR run" in block.detail


def test_classify_block_fragmentation_on_lane_blocked_churn_layout():
    controller = churn_controller()
    admit(controller, make_job("long-a", iom="rsb0.iom0", prrs=["rsb0.prr3"]))
    admit(
        controller,
        make_job("long-b", index=1, iom="rsb0.iom2", prrs=["rsb0.prr4"]),
    )
    short = make_job("short", index=2)
    block = controller.classify_block(short)
    assert block is not None
    assert block.kind == "fragmentation"
    assert "no routable" in block.detail
    # four PRRs sit free, but the largest contiguous run is only three
    assert block.free_total == 4
    assert block.largest_free_run == 3


def test_reject_reason_names_cause_and_largest_free_run():
    controller = churn_controller()
    result = controller.enqueue(make_job("oversized", stages=7))
    assert result.decision is AdmissionDecision.REJECT
    assert result.reason.startswith("capacity:")
    assert "largest free PRR run: 6" in result.reason


# ----------------------------------------------------------------------
# planned relocation (the compaction ledger motion)
# ----------------------------------------------------------------------
def test_relocate_moves_grant_and_frees_old_prr():
    controller = churn_controller()
    job = make_job("tenant", iom="rsb0.iom0", prrs=["rsb0.prr3"])
    admit(controller, job)
    assert controller.free_run_stats() == (5, 3)
    controller.relocate(job, "rsb0.prr3", "rsb0.prr0")
    assignment = controller.resident_assignments()["tenant"]
    assert assignment.prrs == ["rsb0.prr0"]
    assert "rsb0.prr3" in getattr(controller, "_free_prrs")
    assert "rsb0.prr0" not in getattr(controller, "_free_prrs")
    assert controller.free_run_stats() == (5, 5)


def test_relocate_keeps_quarantined_old_prr_out_of_free_pool():
    controller = churn_controller()
    job = make_job("tenant", iom="rsb0.iom0", prrs=["rsb0.prr3"])
    admit(controller, job)
    controller.quarantine("rsb0.prr3")
    controller.relocate(job, "rsb0.prr3", "rsb0.prr0")
    assert "rsb0.prr3" not in getattr(controller, "_free_prrs")
    # the vacated-but-quarantined PRR breaks the free run at position 3
    assert controller.free_run_stats() == (4, 2)
