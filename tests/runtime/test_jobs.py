"""Unit tests for job specs, the lifecycle state machine and jobfiles."""

import json

import pytest

from repro.runtime.jobs import (
    Job,
    JobError,
    JobState,
    RetryPolicy,
    SourceSpec,
    StageSpec,
    StreamJob,
    load_jobfile,
)


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
def test_stage_spec_from_string_and_dict():
    assert StageSpec.from_value("abs").kind == "abs"
    spec = StageSpec.from_value({"kind": "moving_average", "window": 8})
    assert spec.params == {"window": 8}
    module = spec.build("m")
    assert module.name == "m"


def test_stage_spec_rejects_unknown_kind():
    with pytest.raises(JobError, match="unknown stage kind"):
        StageSpec("warp_drive")
    with pytest.raises(JobError, match="needs a 'kind'"):
        StageSpec.from_value({"window": 4})


def test_source_spec_builds_iterators():
    words = list(SourceSpec("ramp", count=5, params={"step": 2}).build())
    assert words == [0, 2, 4, 6, 8]
    constant = list(SourceSpec("constant", count=3, params={"value": 7}).build())
    assert constant == [7, 7, 7]


def test_seeded_source_uses_job_seed_fallback():
    spec = SourceSpec("noise", count=16)
    assert list(spec.build(default_seed=1)) != list(spec.build(default_seed=2))
    assert list(spec.build(default_seed=1)) == list(spec.build(default_seed=1))


def test_source_spec_rejects_bad_input():
    with pytest.raises(JobError, match="unknown source kind"):
        SourceSpec("tape_deck")
    with pytest.raises(JobError, match="count must be"):
        SourceSpec("ramp", count=0)


def test_job_seed_is_stable_name_hash():
    a = StreamJob(name="alpha")
    assert a.seed == StreamJob(name="alpha").seed
    assert a.seed != StreamJob(name="beta").seed


def test_stream_job_validation():
    with pytest.raises(JobError, match="needs a name"):
        StreamJob(name="")
    with pytest.raises(JobError, match="at least one stage"):
        StreamJob(name="x", stages=[])
    with pytest.raises(JobError, match="unknown reconfig path"):
        StreamJob(name="x", reconfig_path="jtag")
    with pytest.raises(JobError, match="lcd_select"):
        StreamJob(name="x", lcd_select=3)
    with pytest.raises(JobError, match="one PRR per stage"):
        StreamJob(name="x", prrs=["rsb0.prr0", "rsb0.prr1"])


def test_stream_job_round_trips_through_dict():
    job = StreamJob(
        name="roundtrip",
        stages=[StageSpec("fir", {"taps": [1, 2, 1]}), StageSpec("abs")],
        source=SourceSpec("sine", count=64, params={"period": 16}),
        priority=3,
        deadline_us=500.0,
        lcd_select=1,
        retry=RetryPolicy(max_attempts=2, backoff_us=50.0),
        requeue_on_eviction=True,
    )
    clone = StreamJob.from_dict(job.to_dict())
    assert clone == job


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(JobError, match="unknown keys"):
        StreamJob.from_dict({"name": "x", "color": "red"})


def test_retry_policy_backoff_is_bounded():
    policy = RetryPolicy(
        max_attempts=5, backoff_us=100.0, factor=2.0, max_backoff_us=300.0
    )
    assert policy.backoff_for(1) == pytest.approx(100.0)
    assert policy.backoff_for(2) == pytest.approx(200.0)
    assert policy.backoff_for(3) == pytest.approx(300.0)  # clamped
    assert policy.backoff_for(10) == pytest.approx(300.0)


# ----------------------------------------------------------------------
# lifecycle state machine
# ----------------------------------------------------------------------
def test_job_happy_path_transitions():
    job = Job(StreamJob(name="ok"))
    for state in (JobState.ADMITTED, JobState.PLACING, JobState.RUNNING,
                  JobState.DRAINING, JobState.DONE):
        job.transition(state, now_us=1.0)
    assert job.terminal
    assert job.finished_us == 1.0


def test_job_rejects_illegal_transition():
    job = Job(StreamJob(name="bad"))
    with pytest.raises(JobError, match="illegal transition"):
        job.transition(JobState.RUNNING, now_us=0.0)
    job.transition(JobState.ADMITTED, now_us=0.0)
    with pytest.raises(JobError, match="illegal transition"):
        job.transition(JobState.DONE, now_us=0.0)


def test_job_eviction_and_requeue_paths():
    job = Job(StreamJob(name="evictee"))
    job.transition(JobState.ADMITTED, 0.0)
    job.transition(JobState.PLACING, 1.0)
    job.transition(JobState.RUNNING, 2.0)
    job.reset_for_requeue()
    job.transition(JobState.QUEUED, 3.0)  # requeue-on-eviction
    job.transition(JobState.ADMITTED, 4.0)
    job.transition(JobState.EVICTED, 5.0)  # final eviction
    assert job.terminal


def test_terminal_states_are_sinks():
    job = Job(StreamJob(name="done"))
    job.fail("broke", 1.0)
    assert job.state is JobState.FAILED
    with pytest.raises(JobError):
        job.transition(JobState.QUEUED, 2.0)


# ----------------------------------------------------------------------
# jobfiles
# ----------------------------------------------------------------------
def write_jobfile(tmp_path, payload):
    path = tmp_path / "jobs.json"
    path.write_text(json.dumps(payload))
    return path


def test_load_jobfile_defaults(tmp_path):
    path = write_jobfile(tmp_path, {"jobs": [{"name": "a"}]})
    jobfile = load_jobfile(path)
    assert jobfile.mode == "fleet"
    assert jobfile.workers == 1
    assert jobfile.params.pr_speedup == 1000.0  # serving default
    assert jobfile.jobs[0].stages[0].kind == "passthrough"


def test_load_jobfile_explicit_speedup_kept(tmp_path):
    path = write_jobfile(tmp_path, {
        "system": {"preset": "prototype", "pr_speedup": 7.0},
        "jobs": [{"name": "a"}],
    })
    assert load_jobfile(path).params.pr_speedup == 7.0


@pytest.mark.parametrize("payload, message", [
    ({"jobs": []}, "non-empty list"),
    ({"mode": "warp", "jobs": [{"name": "a"}]}, "mode must be"),
    ({"jobs": [{"name": "a"}, {"name": "a"}]}, "names must be unique"),
    ({"system": {"preset": "nope"}, "jobs": [{"name": "a"}]},
     "bad system spec"),
])
def test_load_jobfile_rejects_bad_files(tmp_path, payload, message):
    path = write_jobfile(tmp_path, payload)
    with pytest.raises(JobError, match=message):
        load_jobfile(path)


def test_load_jobfile_rejects_bad_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(JobError, match="not valid JSON"):
        load_jobfile(path)


def test_example_jobfiles_parse():
    small = load_jobfile("examples/jobfiles/small.json")
    assert small.mode == "fleet"
    assert len(small.jobs) == 4
    preempt = load_jobfile("examples/jobfiles/preempt.json")
    assert preempt.mode == "colocate"
    priorities = {j.name: j.priority for j in preempt.jobs}
    assert priorities["alarm-hi"] > priorities["logger-lo"]


# ----------------------------------------------------------------------
# job sources
# ----------------------------------------------------------------------
def test_static_job_source_rejects_duplicates_and_iterates():
    from repro.runtime.jobs import StaticJobSource, as_job_source

    jobs = [StreamJob(name="a"), StreamJob(name="b")]
    source = StaticJobSource(jobs)
    assert [j.name for j in source] == ["a", "b"]
    assert len(source) == 2
    with pytest.raises(JobError):
        StaticJobSource([StreamJob(name="x"), StreamJob(name="x")])
    assert as_job_source(source) is source
    adapted = as_job_source(jobs)
    assert [j.name for j in adapted] == ["a", "b"]


def test_queue_job_source_streams_until_closed():
    import queue

    from repro.runtime.jobs import QueueJobSource

    source = QueueJobSource(queue.Queue())
    source.put(StreamJob(name="first"))
    source.put(StreamJob(name="second"))
    source.close()
    assert [j.name for j in source] == ["first", "second"]
