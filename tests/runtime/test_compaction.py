"""End-to-end live compaction: executor relocations, zero-loss
differentials, trigger discipline, pool ledger repacking.

The churn scenario (repro.compact.workloads) parks two pinned long
tenants mid-bus so their chains lane-block the middle IOM; an unpinned
short job is then fragmentation-blocked although four PRRs sit free.
With ``compaction="on"`` the executor relocates each tenant next to
its own IOM over the Figure-5 drain-switch path and the short admits.
"""

import asyncio

import pytest

from repro.compact import churn_jobs, churn_params
from repro.pool import DevicePool, PoolError
from repro.pool.devices import PooledDevice, PoolJob, VirtualPRR
from repro.pool.scheduler import PoolScheduler
from repro.runtime.executor import (
    COMPACTION_BUCKETS,
    ExecutorConfig,
    JobExecutor,
)
from repro.runtime.jobs import (
    Job,
    JobError,
    SourceSpec,
    StageSpec,
    StreamJob,
)


def config(compaction="off"):
    return ExecutorConfig(
        quantum_us=25.0, max_us=20_000.0, compaction=compaction
    )


def jobs():
    # no deadline: every job runs to DONE in both arms, so the on/off
    # differential isolates the relocations themselves
    return churn_jobs(waves=1, long_words=8_000, short_deadline_us=None)


@pytest.fixture(scope="module")
def churn_runs():
    """One churn run per mode, plus each job's output words."""
    runs = {}
    for mode in ("off", "on"):
        executor = JobExecutor(params=churn_params(), config=config(mode))
        report = executor.run(jobs())
        outputs = {
            job.spec.name: list(job.output_words)
            for job in executor._jobs
        }
        runs[mode] = (executor, report, outputs)
    return runs


# ----------------------------------------------------------------------
# configuration surface
# ----------------------------------------------------------------------
def test_compaction_defaults_off_and_validates():
    assert ExecutorConfig().compaction == "off"
    with pytest.raises(JobError, match="compaction"):
        ExecutorConfig(compaction="maybe")
    assert ExecutorConfig.from_dict({"compaction": "on"}).compaction == "on"


# ----------------------------------------------------------------------
# executor behaviour under churn
# ----------------------------------------------------------------------
def test_off_run_never_relocates(churn_runs):
    _, report, _ = churn_runs["off"]
    assert report.compaction_runs == 0
    assert report.compaction_moves == 0
    assert all(j.relocations == 0 for j in report.jobs)


def test_on_run_relocates_both_tenants_with_zero_loss(churn_runs):
    _, report, _ = churn_runs["on"]
    assert report.compaction_runs == 1
    assert report.compaction_moves == 2
    assert report.compaction_words_lost == 0
    relocated = [j for j in report.jobs if j.relocations > 0]
    assert sorted(j.name for j in relocated) == ["long-0a", "long-0b"]
    for job in relocated:
        assert job.words_lost == 0
    # every job -- longs, shorts -- still runs to completion
    assert all(j.state == "DONE" for j in report.jobs)


def test_relocated_outputs_match_undisturbed_runs(churn_runs):
    """The zero-loss contract, byte-for-byte: a relocated job's output
    equals the same job's output in the run that never moved it."""
    _, _, off_outputs = churn_runs["off"]
    _, report, on_outputs = churn_runs["on"]
    for job in report.jobs:
        if job.state == "DONE":
            assert on_outputs[job.name] == off_outputs[job.name], job.name


def test_compaction_observability(churn_runs):
    executor, _, _ = churn_runs["on"]
    metrics = executor.system.sim.metrics
    moves = metrics.counter(
        "repro_compaction_moves_total", {"tenant": "default"}
    )
    assert moves.value == 2
    assert metrics.counter("repro_compaction_runs_total").value == 1
    # the canonical layout fragments 4 free PRRs into runs of 3+1
    # (ratio 0.25) and compaction coalesces them into one run of 4
    before = metrics.gauge("repro_compaction_frag_ratio_before").value
    after = metrics.gauge("repro_compaction_frag_ratio_after").value
    assert before == pytest.approx(0.25)
    assert after == 0.0
    latency = metrics.histogram(
        "repro_compaction_latency_us", buckets=COMPACTION_BUCKETS
    )
    assert latency.count == 2
    events = executor.system.sim.tracer.events
    compact_spans = [
        e for e in events if e.name == "compact" and e.kind == "B"
    ]
    assert len(compact_spans) == 1
    span = compact_spans[0]
    assert span.attrs["trigger"].startswith("short-")
    assert span.attrs["moves_planned"] == 2
    relocated = [e for e in events if e.name == "relocated"]
    assert len(relocated) == 2
    assert all(e.attrs["words_lost"] == 0 for e in relocated)


def test_capacity_block_never_triggers_compaction():
    """The trigger is fragmentation-gated: a job waiting on a held IOM
    is a capacity block and must not cause planner churn."""
    specs = [
        StreamJob(
            name="holder",
            stages=[StageSpec("passthrough")],
            source=SourceSpec("ramp", count=2_000),
            iom="rsb0.iom0",
            preemptible=False,
        ),
        StreamJob(
            name="waiter",
            stages=[StageSpec("passthrough")],
            source=SourceSpec("ramp", count=200),
            iom="rsb0.iom0",
            arrival_us=10.0,
            preemptible=False,
        ),
    ]
    executor = JobExecutor(params=churn_params(), config=config("on"))
    report = executor.run(specs)
    assert all(j.state == "DONE" for j in report.jobs)
    assert report.compaction_runs == 0
    assert report.compaction_moves == 0


# ----------------------------------------------------------------------
# pool-level ledger compaction
# ----------------------------------------------------------------------
def make_device(compaction):
    scheduler = PoolScheduler(overcommit=2.0)
    return PooledDevice(
        0, churn_params(), scheduler, compaction=compaction
    )


def pool_job(jid, name, **spec_kwargs):
    spec = StreamJob(
        name=name,
        stages=[StageSpec("passthrough")],
        source=SourceSpec("ramp", count=100),
        preemptible=False,
        **spec_kwargs,
    )
    job = PoolJob(id=jid, spec=spec, tenant="t", submitted_t=0.0)
    job.runtime = Job(spec, index=jid)
    job.vprrs = [VirtualPRR(vid=jid, job_id=jid, device_id=0)]
    return job


def bind_next(device):
    bound = device.next_binding()
    if bound is None:
        return None
    job, prrs = bound
    for vprr, prr in zip(job.vprrs, prrs):
        vprr.physical = prr
    return job


def fragment_device(compaction="on"):
    """Long tenants bound mid-bus, a short fragmentation-blocked."""
    device = make_device(compaction)
    long_a = pool_job(0, "long-a", iom="rsb0.iom0", prrs=["rsb0.prr3"])
    long_b = pool_job(1, "long-b", iom="rsb0.iom2", prrs=["rsb0.prr4"])
    short = pool_job(2, "short")
    for job in (long_a, long_b, short):
        assert device.enqueue(job) == ""
    assert bind_next(device) is long_a
    assert bind_next(device) is long_b
    assert bind_next(device) is None  # the short is lane-blocked
    return device, long_a, long_b, short


def test_pool_device_repacks_ledger_and_binds_blocked_job():
    device, long_a, long_b, short = fragment_device()
    assert device.maybe_compact() == 2
    assert device.compaction_moves == 2
    # the vPRR->PRR fiction tracks the repack
    assert long_a.vprrs[0].physical == "rsb0.prr0"
    assert long_b.vprrs[0].physical == "rsb0.prr5"
    ledger = device.admission.resident_assignments()
    assert ledger["long-a"].prrs == ["rsb0.prr0"]
    assert ledger["long-b"].prrs == ["rsb0.prr5"]
    # the blocked short now binds
    assert bind_next(device) is short
    # nothing left to do: the next pass is a no-op
    assert device.maybe_compact() == 0


def test_pool_device_compaction_off_is_inert():
    device, _, _, _ = fragment_device(compaction="off")
    assert device.maybe_compact() == 0
    assert device.compaction_moves == 0
    assert bind_next(device) is None


def test_pool_device_futile_token_suppresses_replanning():
    device = make_device("on")
    # both tenants already compact: fragmentation cannot be planned away
    long_a = pool_job(0, "long-a", iom="rsb0.iom0", prrs=["rsb0.prr0"])
    long_b = pool_job(1, "long-b", iom="rsb0.iom2", prrs=["rsb0.prr5"])
    # the short *wants* 2 stages -> needs a run of 2 from one IOM; with
    # the middle of the bus free that actually binds, so block it by
    # pinning instead
    blocked = pool_job(2, "blocked", iom="rsb0.iom1", prrs=["rsb0.prr0"])
    for job in (long_a, long_b, blocked):
        assert device.enqueue(job) == ""
    assert bind_next(device) is long_a
    assert bind_next(device) is long_b
    assert bind_next(device) is None
    # pinned-PRR blocks are capacity, not fragmentation: no planning
    assert device.maybe_compact() == 0
    assert device.compaction_moves == 0


def test_pool_validates_and_reports_compaction():
    with pytest.raises(PoolError, match="compaction"):
        DevicePool(devices=1, compaction="maybe")

    async def scenario():
        pool = DevicePool(
            devices=1, compaction="on", use_processes=False
        )
        try:
            assert pool.stats()["compaction"] == "on"
            assert pool.stats()["compaction_moves"] == 0
            assert pool.summary()["compaction_moves"] == 0
        finally:
            await pool.stop(drain=False)

    asyncio.run(scenario())
