"""Unit tests for CLB geometry and clock regions."""

import pytest

from repro.fabric.geometry import (
    ClockRegion,
    GeometryError,
    Rect,
    bands_are_contiguous,
    clock_regions_of,
)


def test_rect_basic_properties():
    rect = Rect(2, 3, 10, 16)
    assert rect.col_end == 12
    assert rect.row_end == 19
    assert rect.clbs == 160


def test_rect_rejects_bad_sizes():
    with pytest.raises(GeometryError):
        Rect(0, 0, 0, 5)
    with pytest.raises(GeometryError):
        Rect(0, 0, 5, -1)
    with pytest.raises(GeometryError):
        Rect(-1, 0, 5, 5)


def test_intersects_symmetric():
    a = Rect(0, 0, 10, 10)
    b = Rect(5, 5, 10, 10)
    c = Rect(10, 0, 5, 5)
    assert a.intersects(b) and b.intersects(a)
    assert not a.intersects(c)  # touching edges do not intersect
    assert not c.intersects(a)


def test_contains():
    outer = Rect(0, 0, 20, 20)
    inner = Rect(5, 5, 5, 5)
    assert outer.contains(inner)
    assert not inner.contains(outer)
    assert outer.contains(outer)


def test_cells_enumeration():
    rect = Rect(1, 2, 2, 2)
    assert sorted(rect.cells()) == [(1, 2), (1, 3), (2, 2), (2, 3)]


def test_clock_regions_single_band_left_half():
    # 28-column device: centre at 14
    regions = clock_regions_of(Rect(0, 0, 10, 16), device_cols=28)
    assert regions == frozenset({ClockRegion(0, 0)})


def test_clock_regions_multiple_bands():
    regions = clock_regions_of(Rect(0, 8, 10, 16), device_cols=28)
    assert regions == frozenset({ClockRegion(0, 0), ClockRegion(0, 1)})


def test_clock_regions_crossing_halves():
    regions = clock_regions_of(Rect(10, 0, 10, 16), device_cols=28)
    assert regions == frozenset({ClockRegion(0, 0), ClockRegion(1, 0)})


def test_clock_regions_right_half_only():
    regions = clock_regions_of(Rect(14, 16, 10, 16), device_cols=28)
    assert regions == frozenset({ClockRegion(1, 1)})


def test_bands_contiguous():
    assert bands_are_contiguous(
        frozenset({ClockRegion(0, 1), ClockRegion(0, 2)})
    )
    assert not bands_are_contiguous(
        frozenset({ClockRegion(0, 0), ClockRegion(0, 2)})
    )
    assert not bands_are_contiguous(
        frozenset({ClockRegion(0, 0), ClockRegion(1, 0)})
    )
    assert not bands_are_contiguous(frozenset())


def test_region_adjacency():
    assert ClockRegion(0, 1).is_vertically_adjacent(ClockRegion(0, 2))
    assert not ClockRegion(0, 1).is_vertically_adjacent(ClockRegion(1, 2))
    assert not ClockRegion(0, 1).is_vertically_adjacent(ClockRegion(0, 3))


def test_region_string():
    assert str(ClockRegion(0, 3)) == "CR-L3"
    assert str(ClockRegion(1, 0)) == "CR-R0"
