"""Unit tests for resource vectors."""

from repro.fabric.device import get_device
from repro.fabric.resources import ResourceVector, device_capacity


def test_addition_and_subtraction():
    a = ResourceVector(slices=100, bram18=2)
    b = ResourceVector(slices=50, bram18=1, dsp48=4)
    total = a + b
    assert total.slices == 150
    assert total.bram18 == 3
    assert total.dsp48 == 4
    assert (total - b) == a


def test_scalar_multiplication():
    v = ResourceVector(slices=10, bufr=1)
    assert (3 * v).slices == 30
    assert (v * 3).bufr == 3


def test_fits_in():
    small = ResourceVector(slices=100)
    big = ResourceVector(slices=200, bram18=1)
    assert small.fits_in(big)
    assert not big.fits_in(small)
    assert small.fits_in(small)


def test_utilization_on_vlx25():
    device = get_device("XC4VLX25")
    static = ResourceVector(slices=9421)
    util = static.utilization(device)
    assert abs(util["slices"] - 9421 / 10752) < 1e-9


def test_device_capacity_covers_itself():
    device = get_device("XC4VLX25")
    capacity = device_capacity(device)
    assert capacity.slices == device.slices
    assert capacity.fits_in(capacity)


def test_as_dict_and_str():
    v = ResourceVector(slices=5, dcm=1)
    d = v.as_dict()
    assert d["slices"] == 5 and d["dcm"] == 1
    assert "slices=5" in str(v)
    assert "Resources" in str(ResourceVector())
