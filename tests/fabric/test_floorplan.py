"""Unit tests for the floorplanner and its paper constraints."""

import pytest

from repro.fabric.device import get_device
from repro.fabric.floorplan import (
    MAX_PRR_HEIGHT,
    Floorplan,
    FloorplanError,
    auto_floorplan,
)
from repro.fabric.geometry import Rect


@pytest.fixture
def device():
    return get_device("XC4VLX25")


def test_place_prototype_prr(device):
    plan = Floorplan(device)
    placement = plan.place_prr("prr0", Rect(0, 0, 10, 16))
    assert placement.slices == 640  # the paper's 640-slice PRR
    assert len(placement.clock_regions) == 1


def test_prr_height_limit(device):
    plan = Floorplan(device)
    with pytest.raises(FloorplanError, match="BUFR"):
        plan.place_prr("tall", Rect(0, 0, 4, MAX_PRR_HEIGHT + 16))


def test_prr_three_regions_allowed(device):
    plan = Floorplan(device)
    placement = plan.place_prr("big", Rect(0, 0, 4, 48))
    assert len(placement.clock_regions) == 3


def test_prr_may_not_cross_device_halves(device):
    plan = Floorplan(device)
    with pytest.raises(FloorplanError, match="halves|non-adjacent"):
        plan.place_prr("wide", Rect(10, 0, 10, 16))


def test_prrs_may_not_share_clock_regions(device):
    plan = Floorplan(device)
    plan.place_prr("a", Rect(0, 0, 5, 16))
    # same band, same half, disjoint rects -> still illegal (shared region)
    with pytest.raises(FloorplanError, match="clock region"):
        plan.place_prr("b", Rect(6, 0, 5, 16))


def test_prrs_in_different_bands_ok(device):
    plan = Floorplan(device)
    plan.place_prr("a", Rect(0, 0, 5, 16))
    plan.place_prr("b", Rect(0, 16, 5, 16))
    assert len(plan.prrs) == 2


def test_prrs_in_opposite_halves_same_band_ok(device):
    plan = Floorplan(device)
    plan.place_prr("a", Rect(0, 0, 5, 16))
    plan.place_prr("b", Rect(device.center_col, 0, 5, 16))
    assert len(plan.prrs) == 2


def test_duplicate_name_rejected(device):
    plan = Floorplan(device)
    plan.place_prr("a", Rect(0, 0, 5, 16))
    with pytest.raises(FloorplanError, match="already"):
        plan.place_prr("a", Rect(0, 16, 5, 16))


def test_out_of_bounds_rejected(device):
    plan = Floorplan(device)
    with pytest.raises(FloorplanError, match="bounds"):
        plan.place_prr("a", Rect(0, device.clb_rows - 8, 5, 16))


def test_overlap_with_static_rejected(device):
    plan = Floorplan(device)
    plan.reserve_static(Rect(0, 0, 28, 16))
    with pytest.raises(FloorplanError, match="static"):
        plan.place_prr("a", Rect(0, 0, 5, 16))


def test_static_overlap_with_prr_rejected(device):
    plan = Floorplan(device)
    plan.place_prr("a", Rect(0, 0, 5, 16))
    with pytest.raises(FloorplanError, match="overlaps PRR"):
        plan.reserve_static(Rect(0, 0, 28, 16))


def test_remove_prr_frees_regions(device):
    plan = Floorplan(device)
    plan.place_prr("a", Rect(0, 0, 5, 16))
    plan.remove_prr("a")
    plan.place_prr("b", Rect(6, 0, 5, 16))
    assert list(plan.prrs) == ["b"]


def test_static_slices_available(device):
    plan = Floorplan(device)
    plan.place_prr("a", Rect(0, 0, 10, 16))
    assert plan.static_slices_available == device.slices - 640


def test_fragmentation_metric(device):
    plan = Floorplan(device)
    plan.place_prr("a", Rect(0, 0, 10, 16))
    waste = plan.fragmentation({"a": 500})
    assert waste == {"a": 140}
    with pytest.raises(FloorplanError):
        plan.fragmentation({"a": 10_000})


def test_bufr_region_is_middle_band(device):
    plan = Floorplan(device)
    placement = plan.place_prr("a", Rect(0, 0, 4, 48))
    assert placement.bufr_region.band == 1


# ----------------------------------------------------------------------
# auto floorplanner
# ----------------------------------------------------------------------
def test_auto_floorplan_prototype(device):
    plan = auto_floorplan(device, [("prr0", 640), ("prr1", 640)])
    assert plan.prrs["prr0"].slices >= 640
    assert plan.prrs["prr1"].slices >= 640
    regions0 = plan.prrs["prr0"].clock_regions
    regions1 = plan.prrs["prr1"].clock_regions
    assert not (regions0 & regions1)


def test_auto_floorplan_runs_out_of_regions(device):
    too_many = [(f"p{i}", 64) for i in range(device.clock_region_bands + 1)]
    with pytest.raises(FloorplanError, match="out of clock regions"):
        auto_floorplan(device, too_many)


def test_auto_floorplan_oversized_module(device):
    huge = device.center_col * 16 * 4 + 1
    with pytest.raises(FloorplanError, match="at most"):
        auto_floorplan(device, [("p", huge)])


def test_auto_floorplan_multi_region_prrs(device):
    plan = auto_floorplan(device, [("p0", 1500)], regions_per_prr=2)
    assert len(plan.prrs["p0"].clock_regions) <= 2
    assert plan.prrs["p0"].slices >= 1500


def test_auto_floorplan_capacity_error_mentions_limit(device):
    # 2 clock regions x half the LX25 = 14 cols x 32 rows x 4 = 1792 slices
    with pytest.raises(FloorplanError, match="1792"):
        auto_floorplan(device, [("p0", 2000)], regions_per_prr=2)


def test_auto_floorplan_right_half(device):
    plan = auto_floorplan(device, [("p0", 640)], half=1)
    assert all(r.half == 1 for r in plan.prrs["p0"].clock_regions)


def test_auto_floorplan_invalid_regions_per_prr(device):
    with pytest.raises(FloorplanError):
        auto_floorplan(device, [("p0", 64)], regions_per_prr=4)


def test_render_ascii_mentions_prrs(device):
    plan = auto_floorplan(device, [("prr0", 640), ("prr1", 640)])
    art = plan.render_ascii()
    assert "A=prr0" in art
    assert "B=prr1" in art
    assert "|" in art  # half boundary


def test_slice_macro_sites_on_boundary(device):
    plan = auto_floorplan(device, [("prr0", 640)], boundary_signals=74)
    placement = plan.prrs["prr0"]
    sites = placement.slice_macro_sites()
    assert len(sites) == 10  # ceil(74 / 8)
    assert all(col == placement.rect.col for col, _row in sites)


def raw_rect(col, row, width, height):
    """A Rect that bypasses construction-time validation (loader idiom)."""
    rect = Rect.__new__(Rect)
    for key, value in dict(
        col=col, row=row, width=width, height=height
    ).items():
        object.__setattr__(rect, key, value)
    return rect


def test_zero_area_rect_rejected_with_prr_name(device):
    plan = Floorplan(device)
    with pytest.raises(FloorplanError, match="'dead'.*zero or negative"):
        plan.place_prr("dead", raw_rect(0, 0, 0, 16))


def test_negative_size_rect_rejected_with_prr_name(device):
    plan = Floorplan(device)
    with pytest.raises(FloorplanError, match="'dead'.*zero or negative"):
        plan.place_prr("dead", raw_rect(0, 0, 5, -16))


def test_negative_origin_rect_rejected_with_prr_name(device):
    plan = Floorplan(device)
    with pytest.raises(FloorplanError, match="'dead'.*negative"):
        plan.place_prr("dead", raw_rect(-1, 0, 5, 16))


def test_bounds_error_names_the_prr(device):
    plan = Floorplan(device)
    with pytest.raises(FloorplanError, match="PRR 'edge'.*bounds"):
        plan.place_prr("edge", Rect(0, device.clb_rows - 8, 5, 16))


def test_static_bounds_error_has_no_prr_prefix(device):
    plan = Floorplan(device)
    with pytest.raises(FloorplanError, match="bounds") as excinfo:
        plan.reserve_static(Rect(0, device.clb_rows - 8, 5, 16))
    assert "PRR" not in str(excinfo.value)
