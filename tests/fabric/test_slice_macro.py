"""Unit tests for slice macros."""

from repro.fabric.slice_macro import (
    SIGNALS_PER_MACRO,
    SliceMacro,
    boundary_sites,
    macro_slice_cost,
    macros_for_signals,
)


def test_macro_counts():
    assert macros_for_signals(0) == 0
    assert macros_for_signals(1) == 1
    assert macros_for_signals(SIGNALS_PER_MACRO) == 1
    assert macros_for_signals(SIGNALS_PER_MACRO + 1) == 2
    assert macros_for_signals(74) == 10  # the prototype PRR's signal count


def test_macro_slice_cost():
    assert macro_slice_cost(74) == 20
    assert macro_slice_cost(0) == 0


def test_disabled_macro_isolates():
    macro = SliceMacro("sm", 0, 0, enabled=False, idle_value=0)
    macro.drive(0xDEAD)
    assert macro.read() == 0
    macro.set_enabled(True)
    assert macro.read() == 0xDEAD
    macro.set_enabled(False)
    assert macro.read() == 0


def test_boundary_sites_count_and_column():
    sites = boundary_sites(prr_col=3, prr_row=16, prr_height=16, count=4)
    assert len(sites) == 4
    assert all(col == 3 for col, _ in sites)
    assert all(16 <= row < 32 for _, row in sites)


def test_boundary_sites_more_macros_than_rows():
    sites = boundary_sites(prr_col=0, prr_row=0, prr_height=2, count=5)
    assert len(sites) == 5
    assert all(0 <= row < 2 for _, row in sites)


def test_boundary_sites_zero():
    assert boundary_sites(0, 0, 16, 0) == []
