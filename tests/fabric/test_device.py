"""Unit tests for the Virtex-4 device catalogue."""

import pytest

from repro.fabric.device import (
    DEVICES,
    SLICES_PER_CLB,
    Virtex4Device,
    get_board,
    get_device,
)
from repro.fabric.geometry import CLOCK_REGION_ROWS, ClockRegion, GeometryError


def test_vlx25_is_the_paper_prototype_device():
    device = get_device("XC4VLX25")
    assert device.slices == 10_752
    assert device.clb_cols * device.clb_rows * SLICES_PER_CLB == device.slices


def test_vlx60_size():
    assert get_device("XC4VLX60").slices == 26_624


def test_all_devices_have_integral_clock_regions():
    for device in DEVICES.values():
        assert device.clb_rows % CLOCK_REGION_ROWS == 0
        assert device.clock_region_count == 2 * (
            device.clb_rows // CLOCK_REGION_ROWS
        )


def test_device_lookup_case_insensitive():
    assert get_device("xc4vlx25") is get_device("XC4VLX25")


def test_unknown_device_raises():
    with pytest.raises(KeyError):
        get_device("XC7K325T")


def test_rows_not_multiple_of_region_height_rejected():
    with pytest.raises(GeometryError):
        Virtex4Device("BAD", clb_cols=10, clb_rows=20, bram18=1, dsp48=1)


def test_region_rect_tiles_device():
    device = get_device("XC4VLX25")
    total = sum(device.region_rect(r).clbs for r in device.clock_regions())
    assert total == device.clbs


def test_region_rect_halves():
    device = get_device("XC4VLX25")
    left = device.region_rect(ClockRegion(0, 0))
    right = device.region_rect(ClockRegion(1, 0))
    assert left.col == 0
    assert right.col == device.center_col
    assert left.width + right.width == device.clb_cols


def test_region_rect_out_of_range():
    device = get_device("XC4VLX25")
    with pytest.raises(GeometryError):
        device.region_rect(ClockRegion(0, 99))


def test_ml401_board():
    board = get_board("ML401")
    assert board.device.name == "XC4VLX25"
    assert board.compact_flash
    assert board.oscillator_hz == 100e6
    assert board.sdram_bytes == 64 * 1024 * 1024


def test_unknown_board_raises():
    with pytest.raises(KeyError):
        get_board("ZCU102")


def test_larger_devices_have_more_resources():
    ordered = ["XC4VLX15", "XC4VLX25", "XC4VLX40", "XC4VLX60", "XC4VLX200"]
    slices = [get_device(n).slices for n in ordered]
    assert slices == sorted(slices)
    brams = [get_device(n).bram18 for n in ordered]
    assert brams == sorted(brams)


def test_bufr_count():
    device = get_device("XC4VLX25")
    assert device.bufr_count == device.clock_region_count * 2
