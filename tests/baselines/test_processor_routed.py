"""Unit tests for the processor-routed communication baseline."""

import pytest

from repro.baselines.processor_routed import (
    RELAY_CYCLES_PER_WORD,
    ProcessorRoutedLink,
    processor_relay,
)
from repro.comm.fsl import FslLink
from repro.control.microblaze import Microblaze
from repro.sim.clock import Clock
from repro.sim.kernel import Simulator


def test_relay_moves_words_in_order():
    sim = Simulator()
    cpu = Microblaze(sim, Clock(sim, freq_hz=100e6))
    source = FslLink("src")
    destination = FslLink("dst")
    for value in range(5):
        source.master_write(value, control=(value == 2))
    moved = cpu.run_to_completion(
        processor_relay(source, destination, word_limit=5), "relay"
    )
    assert moved == 5
    words = [destination.slave_read() for _ in range(5)]
    assert words == [(0, False), (1, False), (2, True), (3, False), (4, False)]


def test_relay_throughput_bounded_by_cpu():
    """Relaying N words takes at least N * RELAY_CYCLES_PER_WORD cycles."""
    sim = Simulator()
    clock = Clock(sim, freq_hz=100e6)
    cpu = Microblaze(sim, clock)
    source = FslLink("src", depth=1024)
    destination = FslLink("dst", depth=1024)
    n = 200
    for value in range(n):
        source.master_write(value)
    start = sim.now
    cpu.run_to_completion(processor_relay(source, destination, word_limit=n))
    elapsed_cycles = (sim.now - start) / clock.period_ps
    assert elapsed_cycles >= n * RELAY_CYCLES_PER_WORD


def test_analytic_throughput():
    link = ProcessorRoutedLink(cpu_hz=100e6, cycles_per_word=10)
    assert link.throughput_words_per_s() == 10e6
    assert link.throughput_words_per_s(active_streams=4) == 2.5e6
    with pytest.raises(ValueError):
        link.throughput_words_per_s(0)


def test_vapres_channel_beats_processor_routing():
    """Section II claim: direct switch-box channels avoid the CPU
    bottleneck -- a 100 MHz channel carries 10x the relayed bandwidth."""
    vapres_words_per_s = 100e6  # one word per fabric cycle per channel
    relayed = ProcessorRoutedLink(cpu_hz=100e6).throughput_words_per_s()
    assert vapres_words_per_s / relayed == pytest.approx(10.0)


def test_latency():
    link = ProcessorRoutedLink(cpu_hz=100e6, cycles_per_word=10)
    assert link.latency_seconds() == pytest.approx(100e-9)
