"""Unit tests for the adjacent-only (PolySAF-style) baseline."""

import pytest

from repro.baselines.adjacent_only import AdjacencyError, AdjacentOnlyRouter
from repro.comm.channel import SwitchFabric
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.comm.router import ChannelRouter
from repro.comm.switchbox import SwitchBox


def make_router(n=4):
    boxes = [SwitchBox(i, 2, 2, 1, 1) for i in range(n)]
    inner = ChannelRouter(boxes, SwitchFabric())
    return AdjacentOnlyRouter(inner)


def endpoints():
    return ProducerInterface("p"), ConsumerInterface("c")


def test_adjacent_channel_allowed():
    router = make_router()
    channel = router.establish(1, 2, *endpoints())
    assert channel.d == 2


def test_same_box_allowed():
    router = make_router()
    assert router.establish(2, 2, *endpoints()).d == 1


def test_distant_channel_rejected():
    router = make_router()
    with pytest.raises(AdjacencyError, match="adjacent"):
        router.establish(0, 3, *endpoints())
    assert router.rejected == [(0, 3)]


def test_try_establish_none_on_distance():
    router = make_router()
    assert router.try_establish(0, 2, *endpoints()) is None
    assert router.try_establish(0, 1, *endpoints()) is not None


def test_mappable_fraction():
    assert AdjacentOnlyRouter.mappable_fraction([]) == 1.0
    assert AdjacentOnlyRouter.mappable_fraction([1, 1, 1]) == 1.0
    assert AdjacentOnlyRouter.mappable_fraction([1, 2, 3, 1]) == 0.5


def test_vapres_routes_what_polysaf_cannot():
    """The headline Section II contrast: arbitrary-PRR channels."""
    boxes = [SwitchBox(i, 2, 2, 1, 1) for i in range(4)]
    vapres = ChannelRouter(boxes, SwitchFabric())
    restricted = AdjacentOnlyRouter(vapres)
    producer, consumer = endpoints()
    assert restricted.try_establish(0, 3, producer, consumer) is None
    assert vapres.try_establish(0, 3, producer, consumer) is not None
