"""Unit tests for the time-multiplexed shared-bus baseline."""

import pytest

from repro.baselines.shared_bus import SONIC_BUS_HZ, SharedBus
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.sim.clock import Clock
from repro.sim.kernel import Simulator


def endpoints(n_words=0):
    producer = ProducerInterface("p", depth=1024)
    consumer = ConsumerInterface("c", depth=1024)
    for value in range(n_words):
        producer.module_write(value)
    return producer, consumer


def test_single_connection_moves_one_word_per_cycle():
    bus = SharedBus()
    producer, consumer = endpoints(10)
    bus.connect(producer, consumer)
    for _ in range(10):
        bus.commit()
    assert consumer.fifo.drain() == list(range(10))


def test_connections_share_bus_bandwidth():
    bus = SharedBus()
    pairs = [endpoints(100) for _ in range(4)]
    connections = [bus.connect(p, c) for p, c in pairs]
    for _ in range(100):
        bus.commit()
    moved = [connection.words_moved for connection in connections]
    assert sum(moved) == 100
    assert all(m == 25 for m in moved)  # fair round-robin


def test_idle_slots_counted():
    bus = SharedBus()
    producer, consumer = endpoints(0)  # nothing to send
    bus.connect(producer, consumer)
    for _ in range(5):
        bus.commit()
    assert bus.idle_cycles == 5
    bus2 = SharedBus()
    bus2.commit()  # no connections at all
    assert bus2.idle_cycles == 1


def test_full_consumer_stalls_slot():
    bus = SharedBus()
    producer = ProducerInterface("p", depth=16)
    consumer = ConsumerInterface("c", depth=2)
    for value in range(5):
        producer.module_write(value)
    bus.connect(producer, consumer)
    for _ in range(10):
        bus.commit()
    assert consumer.words_discarded == 0
    assert len(consumer.fifo) == 2


def test_disconnect():
    bus = SharedBus()
    producer, consumer = endpoints(10)
    connection = bus.connect(producer, consumer)
    bus.commit()
    bus.disconnect(connection)
    bus.commit()
    assert connection.words_moved == 1


def test_bus_on_50mhz_clock_vs_vapres_100mhz():
    """Section II: Sonic-on-a-Chip's bus ran at 50 MHz; VAPRES switch
    boxes run at 100 MHz and every channel gets full bandwidth."""
    sim = Simulator()
    bus_clock = Clock(sim, freq_hz=SONIC_BUS_HZ)
    bus = SharedBus()
    bus_clock.attach(bus)
    pairs = [endpoints(10_000) for _ in range(2)]
    connections = [bus.connect(p, c) for p, c in pairs]
    bus_clock.start()
    sim.run_for(100 * 20_000)  # 100 bus cycles at 20 ns
    per_connection = connections[0].words_moved
    # 2 connections on a 50 MHz bus -> 25 Mwords/s each;
    # VAPRES: 100 Mwords/s per channel -> 4x advantage
    assert per_connection == 50
    vapres_words_in_same_time = 100 * 2  # 200 fabric cycles at 10 ns
    assert vapres_words_in_same_time / per_connection == 4


def test_analytic_throughput():
    bus = SharedBus()
    assert bus.throughput_words_per_s(active_connections=2) == 25e6
    with pytest.raises(ValueError):
        bus.throughput_words_per_s(active_connections=0)
