"""Unit tests for the naive halt/reconfigure/resume baseline."""

import pytest

from repro.analysis.metrics import interruption_report
from repro.baselines.naive_switching import NaiveSwitcher
from repro.modules import Iom, MovingAverage
from repro.modules.base import staged
from repro.modules.sources import sine_wave

from tests.helpers import build_system


def make_scenario():
    system = build_system(pr_speedup=500.0)
    iom = Iom("io0", source=sine_wave(count=100_000))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(MovingAverage("filterA", window=4), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.register_module(
        "filterB", lambda: staged(MovingAverage("filterB", window=4))
    )
    system.repository.preload_to_sdram("filterB", "rsb0.prr0")
    return system, iom, ch_in, ch_out


def run_naive(system, ch_in, ch_out):
    switcher = NaiveSwitcher(system)
    return system.microblaze.run_to_completion(
        switcher.switch(
            prr="rsb0.prr0",
            new_module="filterB",
            upstream_slot="rsb0.iom0",
            downstream_slot="rsb0.iom0",
            input_channel=ch_in,
            output_channel=ch_out,
        ),
        "naive-switch",
    )


def test_naive_switch_replaces_module_in_place():
    system, iom, ch_in, ch_out = make_scenario()
    system.run_for_us(20)
    report = run_naive(system, ch_in, ch_out)
    assert system.prr("rsb0.prr0").module.name == "filterB"
    assert report.words_lost == 0
    system.run_for_us(20)
    assert len(iom.received) > 0


def test_naive_interruption_at_least_reconfig_time():
    """The baseline's stream interruption is dominated by PR time --
    exactly what the VAPRES methodology eliminates."""
    system, iom, ch_in, ch_out = make_scenario()
    system.run_for_us(20)
    report = run_naive(system, ch_in, ch_out)
    assert report.interruption_seconds >= report.reconfig_seconds
    system.run_for_us(20)
    nominal = 1 / system.system_clock.frequency_hz
    stats = interruption_report(iom.receive_times, nominal)
    assert stats.max_gap_s >= report.reconfig_seconds
    assert stats.interrupted


def test_naive_preserves_state_across_reconfig():
    system, iom, ch_in, ch_out = make_scenario()
    system.run_for_us(20)
    report = run_naive(system, ch_in, ch_out)
    new_module = system.prr("rsb0.prr0").module
    assert len(report.state_words) == new_module.state_word_count


def test_naive_output_values_continuous():
    """Even the naive baseline is value-correct (just slow): output equals
    an unswitched reference."""
    from repro.modules.state import from_u32, to_u32

    count = 3000
    system = build_system(pr_speedup=500.0)
    iom = Iom("io0", source=sine_wave(count=count))
    system.attach_iom("rsb0.iom0", iom)
    system.place_module_directly(MovingAverage("filterA", window=4), "rsb0.prr0")
    ch_in = system.open_stream("rsb0.iom0", "rsb0.prr0")
    ch_out = system.open_stream("rsb0.prr0", "rsb0.iom0")
    system.register_module(
        "filterB", lambda: staged(MovingAverage("filterB", window=4))
    )
    system.repository.preload_to_sdram("filterB", "rsb0.prr0")
    system.run_for_us(10)
    run_naive(system, ch_in, ch_out)
    system.run_for_us(200)
    reference = MovingAverage("ref", window=4)
    expected = [
        from_u32(to_u32(reference.process(to_u32(s))))
        for s in sine_wave(count=count)
    ]
    assert iom.received == expected[: len(iom.received)]
    assert len(iom.received) > 1000


def test_naive_requires_resident_module():
    system, _, ch_in, ch_out = make_scenario()
    system.prr("rsb0.prr0").unload()
    switcher = NaiveSwitcher(system)
    with pytest.raises(ValueError, match="no module"):
        system.microblaze.run_to_completion(
            switcher.switch(
                prr="rsb0.prr0",
                new_module="filterB",
                upstream_slot="rsb0.iom0",
                downstream_slot="rsb0.iom0",
                input_channel=ch_in,
                output_channel=ch_out,
            ),
            "naive",
        )
