"""Unit tests for FSL links."""

from repro.comm.fsl import FslLink


def test_write_then_read():
    link = FslLink("fsl")
    assert link.master_write(42)
    assert link.slave_read() == (42, False)


def test_control_bit_travels_with_data():
    link = FslLink("fsl")
    link.master_write(1, control=True)
    link.master_write(2, control=False)
    assert link.slave_read() == (1, True)
    assert link.slave_read() == (2, False)


def test_read_empty_returns_none():
    assert FslLink("fsl").slave_read() is None


def test_peek_does_not_consume():
    link = FslLink("fsl")
    link.master_write(5)
    assert link.slave_peek() == (5, False)
    assert len(link) == 1


def test_full_link_rejects_writes():
    link = FslLink("fsl", depth=4)
    for value in range(4):
        assert link.master_write(value)
    assert not link.can_write
    assert not link.master_write(99)


def test_data_masked_to_width():
    link = FslLink("fsl", width=8)
    link.master_write(0x1FF)
    assert link.slave_read() == (0xFF, False)


def test_reset_clears():
    link = FslLink("fsl")
    link.master_write(1)
    link.reset()
    assert not link.can_read


def test_wait_readable_fires_on_write():
    link = FslLink("fsl")
    fired = []
    link.wait_readable(lambda: fired.append("r"))
    assert fired == []
    link.master_write(1)
    assert fired == ["r"]
    # waiter is one-shot
    link.master_write(2)
    assert fired == ["r"]


def test_wait_readable_immediate_when_data_present():
    link = FslLink("fsl")
    link.master_write(1)
    fired = []
    link.wait_readable(lambda: fired.append("r"))
    assert fired == ["r"]


def test_wait_writable_fires_on_drain():
    link = FslLink("fsl", depth=1)
    link.master_write(1)
    fired = []
    link.wait_writable(lambda: fired.append("w"))
    assert fired == []
    link.slave_read()
    assert fired == ["w"]


def test_wait_writable_fires_on_reset():
    link = FslLink("fsl", depth=1)
    link.master_write(1)
    fired = []
    link.wait_writable(lambda: fired.append("w"))
    link.reset()
    assert fired == ["w"]
