"""Unit tests for the channel router."""

import pytest

from repro.comm.channel import SwitchFabric
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.comm.router import ChannelRouter, RoutingError
from repro.comm.switchbox import LEFT, MODULE_OUT, RIGHT, SwitchBox


def make_router(n=4, kr=2, kl=2, ki=1, ko=1):
    boxes = [SwitchBox(i, kr, kl, ki, ko) for i in range(n)]
    fabric = SwitchFabric()
    return ChannelRouter(boxes, fabric), boxes, fabric


def endpoints():
    producer = ProducerInterface("p")
    consumer = ConsumerInterface("c")
    return producer, consumer


def test_router_needs_boxes():
    with pytest.raises(RoutingError):
        ChannelRouter([], SwitchFabric())


def test_rightward_path_hops():
    router, boxes, _ = make_router()
    producer, consumer = endpoints()
    channel = router.establish(0, 3, producer, consumer)
    assert channel.d == 4
    directions = [h.direction for h in channel.hops]
    assert directions == [RIGHT, RIGHT, RIGHT, MODULE_OUT]
    assert [h.box for h in channel.hops] == [0, 1, 2, 3]


def test_leftward_path_hops():
    router, _, _ = make_router()
    producer, consumer = endpoints()
    channel = router.establish(3, 1, producer, consumer)
    assert channel.d == 3
    assert [h.direction for h in channel.hops] == [LEFT, LEFT, MODULE_OUT]
    assert [h.box for h in channel.hops] == [3, 2, 1]


def test_same_box_loopback():
    router, _, _ = make_router()
    producer, consumer = endpoints()
    channel = router.establish(2, 2, producer, consumer)
    assert channel.d == 1
    assert channel.hops[0].direction == MODULE_OUT


def test_out_of_range_indices():
    router, _, _ = make_router()
    producer, consumer = endpoints()
    with pytest.raises(RoutingError, match="out of range"):
        router.establish(0, 9, producer, consumer)


def test_lane_exhaustion_and_rollback():
    router, boxes, _ = make_router(n=3, kr=1, kl=1)
    # consume the single rightward lane on box 0
    router.establish(0, 1, *endpoints())
    producer, consumer = endpoints()
    with pytest.raises(RoutingError):
        router.establish(0, 2, producer, consumer)
    # rollback: nothing extra must remain allocated on box 1/2
    assert boxes[1].free_lanes(RIGHT) == [0]
    assert boxes[2].free_lanes(MODULE_OUT) == [0]


def test_try_establish_returns_none_on_failure():
    router, _, _ = make_router(n=2, kr=1, kl=1)
    assert router.try_establish(0, 1, *endpoints()) is not None
    assert router.try_establish(0, 1, *endpoints()) is None


def test_parallel_channels_use_distinct_lanes():
    router, boxes, _ = make_router(kr=2)
    ch1 = router.establish(0, 2, *endpoints())
    ch2 = router.establish(0, 1, *endpoints())
    lanes_box0 = {h.lane for h in ch1.hops + ch2.hops if h.box == 0}
    assert lanes_box0 == {0, 1}


def test_release_frees_all_hops():
    router, boxes, fabric = make_router()
    channel = router.establish(0, 3, *endpoints())
    assert router.established_count == 1
    router.release(channel)
    assert router.established_count == 0
    for box in boxes:
        assert box.utilization() == 0.0
    assert channel.channel_id not in fabric.channels
    # a new channel can reuse the lanes
    assert router.try_establish(0, 3, *endpoints()) is not None


def test_release_unknown_channel_raises():
    router, _, _ = make_router()
    channel = router.establish(0, 1, *endpoints())
    router.release(channel)
    with pytest.raises(RoutingError):
        router.release(channel)


def test_channels_added_to_fabric():
    router, _, fabric = make_router()
    channel = router.establish(0, 2, *endpoints())
    assert fabric.channels[channel.channel_id] is channel


def test_specific_ports():
    router, boxes, _ = make_router(ki=2, ko=2)
    producer, consumer = endpoints()
    channel = router.establish(0, 1, producer, consumer, src_port=1, dst_port=1)
    assert channel.hops[-1].lane == 1
    # the first hop's mux reads module input 1
    source = boxes[0].mux_source(RIGHT, channel.hops[0].lane)
    assert source.lane == 1


def test_comm_state_snapshot_and_feasibility():
    router, _, _ = make_router(n=3, kr=1, kl=1)
    state = router.comm_state()
    assert state.free_right == [1, 1, 1]
    assert state.can_route(0, 2)
    router.establish(0, 2, *endpoints())
    state = router.comm_state()
    assert state.free_right == [0, 0, 1]
    assert not state.can_route(0, 2)
    assert not state.can_route(0, 1)
    assert state.can_route(2, 0)  # leftward lanes untouched
    assert not state.can_route(1, 2)  # module_out at 2 is taken


def test_comm_state_same_box():
    router, _, _ = make_router(n=2, ki=1)
    state = router.comm_state()
    assert state.can_route(1, 1)
    router.establish(1, 1, *endpoints())
    assert not router.comm_state().can_route(1, 1)


def test_hops_of_released_channel_empty():
    router, _, _ = make_router()
    channel = router.establish(0, 1, *endpoints())
    assert len(router.hops_of(channel)) == 2
    router.release(channel)
    assert router.hops_of(channel) == []
