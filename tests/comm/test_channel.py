"""Unit tests for streaming channels and the switch fabric."""

import pytest

from repro.comm.channel import StreamingChannel, SwitchFabric
from repro.comm.interfaces import ConsumerInterface, ProducerInterface
from repro.comm.switchbox import MODULE_OUT, RIGHT, LaneRef


def make_channel(d=3, depth=32):
    producer = ProducerInterface("p", depth=depth)
    consumer = ConsumerInterface("c", depth=depth)
    producer.fifo_ren = True
    consumer.fifo_wen = True
    hops = [LaneRef(i, RIGHT, 0) for i in range(d - 1)]
    hops.append(LaneRef(d - 1, MODULE_OUT, 0))
    channel = StreamingChannel(0, producer, consumer, hops)
    return channel, producer, consumer


def tick(channel, n=1):
    for _ in range(n):
        channel.sample()
        channel.commit()


def test_channel_requires_hops():
    producer = ProducerInterface("p")
    consumer = ConsumerInterface("c")
    with pytest.raises(ValueError):
        StreamingChannel(0, producer, consumer, [])


def test_pipeline_latency_is_d_plus_one_cycles():
    """d switch-box registers plus the consumer FIFO write edge."""
    channel, producer, consumer = make_channel(d=4)
    producer.module_write(99)
    tick(channel, 4)
    assert not consumer.module_can_read  # still in flight
    tick(channel, 1)
    assert consumer.module_read() == 99


def test_one_word_per_cycle_throughput():
    channel, producer, consumer = make_channel(d=2)
    for value in range(20):
        producer.module_write(value)
    tick(channel, 22)
    received = []
    while consumer.module_can_read:
        received.append(consumer.module_read())
    assert received == list(range(20))


def test_backpressure_slack_set_to_2d():
    channel, _, consumer = make_channel(d=5)
    assert consumer.fifo.almost_full_slack == 10


def test_no_words_lost_with_slow_consumer():
    """The 2*d feedback threshold guarantees zero discards even though the
    consumer FIFO is tiny and the producer streams flat out."""
    channel, producer, consumer = make_channel(d=3, depth=8)
    sent = 0
    drained = []
    for _ in range(200):
        if producer.module_can_write and sent < 100:
            producer.module_write(sent)
            sent += 1
        tick(channel)
        # consumer drains only every 4th cycle (slower than the producer)
        if channel.words_delivered % 4 == 0 and consumer.module_can_read:
            drained.append(consumer.module_read())
    while consumer.module_can_read:
        drained.append(consumer.module_read())
    assert consumer.words_discarded == 0
    assert drained == list(range(len(drained)))


def test_in_flight_count():
    channel, producer, _ = make_channel(d=4)
    for value in range(3):
        producer.module_write(value)
    tick(channel, 2)
    assert channel.in_flight == 2


def test_release_reports_lost_words():
    channel, producer, _ = make_channel(d=4)
    for value in range(3):
        producer.module_write(value)
    tick(channel, 2)
    lost = channel.release()
    assert lost == 2
    assert channel.released
    assert channel.in_flight == 0


def test_released_channel_ignores_ticks():
    channel, producer, consumer = make_channel(d=2)
    producer.module_write(1)
    channel.release()
    tick(channel, 5)
    assert not consumer.module_can_read


def test_release_empty_channel_loses_nothing():
    channel, _, _ = make_channel(d=2)
    tick(channel, 3)
    assert channel.release() == 0


# ----------------------------------------------------------------------
# SwitchFabric
# ----------------------------------------------------------------------
def test_fabric_ticks_all_channels():
    fabric = SwitchFabric()
    ch_a, prod_a, cons_a = make_channel(d=1)
    ch_b, prod_b, cons_b = make_channel(d=1)
    ch_b.channel_id = 1
    fabric.add(ch_a)
    fabric.add(ch_b)
    prod_a.module_write(10)
    prod_b.module_write(20)
    fabric.sample()
    fabric.commit()
    fabric.sample()
    fabric.commit()
    assert cons_a.module_read() == 10
    assert cons_b.module_read() == 20


def test_fabric_remove():
    fabric = SwitchFabric()
    channel, producer, consumer = make_channel(d=1)
    fabric.add(channel)
    fabric.remove(channel.channel_id)
    producer.module_write(1)
    fabric.sample()
    fabric.commit()
    assert not consumer.module_can_read
    fabric.remove(999)  # removing unknown ids is a no-op


def test_active_channels_excludes_released():
    fabric = SwitchFabric()
    channel, _, _ = make_channel(d=1)
    fabric.add(channel)
    assert fabric.active_channels == [channel]
    channel.release()
    assert fabric.active_channels == []
