"""Unit tests for producer/consumer module interfaces."""

from repro.comm.interfaces import ConsumerInterface, ProducerInterface


def test_producer_idle_without_ren():
    producer = ProducerInterface("p")
    producer.module_write(1)
    assert producer.drive(backpressured=False) == (False, 0)
    producer.fifo_ren = True
    assert producer.drive(backpressured=False) == (True, 1)


def test_producer_respects_backpressure():
    producer = ProducerInterface("p")
    producer.fifo_ren = True
    producer.module_write(1)
    assert producer.drive(backpressured=True) == (False, 0)
    assert len(producer.fifo) == 1  # the word stays queued
    assert producer.drive(backpressured=False) == (True, 1)


def test_producer_empty_fifo_drives_invalid():
    producer = ProducerInterface("p")
    producer.fifo_ren = True
    assert producer.drive(backpressured=False) == (False, 0)


def test_producer_masks_to_width():
    producer = ProducerInterface("p", width=8)
    producer.fifo_ren = True
    producer.module_write(0x1FF)
    assert producer.drive(backpressured=False) == (True, 0xFF)


def test_producer_full_blocks_module():
    producer = ProducerInterface("p", depth=4)
    for value in range(4):
        assert producer.module_write(value)
    assert not producer.module_can_write
    assert not producer.module_write(99)
    assert len(producer.fifo) == 4


def test_producer_counts_words_sent():
    producer = ProducerInterface("p")
    producer.fifo_ren = True
    for value in range(3):
        producer.module_write(value)
        producer.drive(backpressured=False)
    assert producer.words_sent == 3


def test_producer_reset_clears_fifo():
    producer = ProducerInterface("p")
    producer.module_write(1)
    producer.reset()
    assert producer.fifo.empty


def test_consumer_requires_wen():
    consumer = ConsumerInterface("c")
    consumer.receive(True, 42)
    assert not consumer.module_can_read
    consumer.fifo_wen = True
    consumer.receive(True, 42)
    assert consumer.module_read() == 42


def test_consumer_ignores_invalid_words():
    consumer = ConsumerInterface("c")
    consumer.fifo_wen = True
    consumer.receive(False, 42)
    assert not consumer.module_can_read
    assert consumer.words_received == 0


def test_consumer_discards_when_full():
    consumer = ConsumerInterface("c", depth=2)
    consumer.fifo_wen = True
    for value in range(3):
        consumer.receive(True, value)
    assert consumer.words_discarded == 1
    assert consumer.words_received == 2


def test_consumer_full_feedback_threshold():
    consumer = ConsumerInterface("c", depth=10)
    consumer.fifo_wen = True
    consumer.set_backpressure_slack(4)  # 2*d with d=2
    for value in range(5):
        consumer.receive(True, value)
    assert not consumer.full_feedback  # remaining 5 > 4
    consumer.receive(True, 5)
    assert consumer.full_feedback  # remaining 4


def test_consumer_module_read_empty_returns_none():
    consumer = ConsumerInterface("c")
    assert consumer.module_read() is None
    assert consumer.module_peek() is None


def test_consumer_peek_then_read():
    consumer = ConsumerInterface("c")
    consumer.fifo_wen = True
    consumer.receive(True, 7)
    assert consumer.module_peek() == 7
    assert consumer.module_read() == 7


def test_consumer_reset_clears_discard_counter():
    consumer = ConsumerInterface("c", depth=1)
    consumer.fifo_wen = True
    consumer.receive(True, 1)
    consumer.receive(True, 2)
    assert consumer.words_discarded == 1
    consumer.reset()
    assert consumer.words_discarded == 0
    assert consumer.fifo.empty


def test_consumer_masks_to_width():
    consumer = ConsumerInterface("c", width=4)
    consumer.fifo_wen = True
    consumer.receive(True, 0xFF)
    assert consumer.module_read() == 0xF
