"""Unit tests for switch boxes."""

import pytest

from repro.comm.switchbox import (
    LEFT,
    MODULE_IN,
    MODULE_OUT,
    RIGHT,
    LaneRef,
    SourceRef,
    SwitchBox,
    SwitchBoxError,
)


@pytest.fixture
def box():
    return SwitchBox(index=1, kr=2, kl=2, ki=1, ko=1)


def test_lane_counts(box):
    assert box.free_lanes(RIGHT) == [0, 1]
    assert box.free_lanes(LEFT) == [0, 1]
    assert box.free_lanes(MODULE_OUT) == [0]


def test_invalid_construction():
    with pytest.raises(SwitchBoxError):
        SwitchBox(0, kr=-1, kl=0, ki=1, ko=1)
    with pytest.raises(SwitchBoxError):
        SwitchBox(0, kr=1, kl=1, ki=0, ko=1)


def test_allocate_first_free_lane(box):
    ref = box.allocate(RIGHT, channel_id=7, source=SourceRef(MODULE_IN, 0))
    assert ref == LaneRef(1, RIGHT, 0)
    assert box.owner_of(RIGHT, 0) == 7
    assert box.free_lanes(RIGHT) == [1]


def test_allocate_exhaustion(box):
    box.allocate(RIGHT, 1, SourceRef(MODULE_IN, 0))
    box.allocate(RIGHT, 2, SourceRef(LEFT, 0))
    with pytest.raises(SwitchBoxError, match="no free"):
        box.allocate(RIGHT, 3, SourceRef(LEFT, 1))


def test_allocate_specific_lane(box):
    ref = box.allocate_specific(RIGHT, 1, 5, SourceRef(MODULE_IN, 0))
    assert ref.lane == 1
    assert box.free_lanes(RIGHT) == [0]
    with pytest.raises(SwitchBoxError, match="already owned"):
        box.allocate_specific(RIGHT, 1, 6, SourceRef(MODULE_IN, 0))


def test_allocate_specific_unknown_lane(box):
    with pytest.raises(SwitchBoxError, match="no lane"):
        box.allocate_specific(RIGHT, 9, 5, SourceRef(MODULE_IN, 0))


def test_bad_source_rejected(box):
    with pytest.raises(SwitchBoxError):
        box.allocate(RIGHT, 1, SourceRef(MODULE_IN, 5))
    with pytest.raises(SwitchBoxError):
        box.allocate(RIGHT, 1, SourceRef("X", 0))


def test_release_frees_lane(box):
    ref = box.allocate(MODULE_OUT, 1, SourceRef(RIGHT, 0))
    box.release(ref)
    assert box.owner_of(MODULE_OUT, 0) is None
    assert box.mux_source(MODULE_OUT, 0) is None


def test_release_unallocated_raises(box):
    with pytest.raises(SwitchBoxError, match="not allocated"):
        box.release(LaneRef(1, RIGHT, 0))
    with pytest.raises(SwitchBoxError, match="unknown lane"):
        box.release(LaneRef(1, RIGHT, 7))


def test_utilization(box):
    assert box.utilization() == 0.0
    box.allocate(RIGHT, 1, SourceRef(MODULE_IN, 0))
    assert 0 < box.utilization() < 1


# ----------------------------------------------------------------------
# DCR MUX_sel encoding
# ----------------------------------------------------------------------
def test_mux_bits_empty_is_zero(box):
    assert box.mux_select_bits() == 0


def test_mux_bits_roundtrip(box):
    box.allocate(RIGHT, 1, SourceRef(MODULE_IN, 0))
    box.allocate(MODULE_OUT, 2, SourceRef(LEFT, 1))
    bits = box.mux_select_bits()
    assert bits != 0
    clone = SwitchBox(index=1, kr=2, kl=2, ki=1, ko=1)
    clone.set_mux_from_bits(bits)
    assert clone.mux_select_bits() == bits
    assert clone.mux_source(RIGHT, 0) == SourceRef(MODULE_IN, 0)
    assert clone.mux_source(MODULE_OUT, 0) == SourceRef(LEFT, 1)


def test_set_mux_from_bits_rejects_bad_code(box):
    sources = 2 + 2 + 1  # kr + kl + ko
    bits_per_lane = (sources).bit_length()
    bad = (1 << bits_per_lane) - 1  # code 7 > 5 sources
    with pytest.raises(SwitchBoxError, match="no source"):
        box.set_mux_from_bits(bad)


def test_set_mux_from_bits_clears_with_zero(box):
    box.allocate(RIGHT, 1, SourceRef(MODULE_IN, 0))
    box.set_mux_from_bits(0)
    assert box.mux_source(RIGHT, 0) is None
