"""Unit tests for the interconnect timing model."""

import pytest

from repro.comm.timing import (
    channel_latency_cycles,
    combinational_max_frequency_hz,
    frequency_table,
    registered_max_frequency_hz,
)


def test_registered_frequency_is_distance_independent():
    assert registered_max_frequency_hz(1) == registered_max_frequency_hz(8)


def test_registered_fabric_supports_100mhz():
    """The prototype clocks its switch boxes at 100 MHz (Section V.A)."""
    assert registered_max_frequency_hz() >= 100e6


def test_combinational_frequency_degrades_with_distance():
    freqs = [combinational_max_frequency_hz(d) for d in range(1, 9)]
    assert freqs == sorted(freqs, reverse=True)
    assert freqs[0] > 2 * freqs[3]


def test_combinational_matches_sonic_regime():
    """Around 2-3 hops the unregistered fabric lands near the 50 MHz the
    paper reports for Sonic-on-a-Chip's shared bus (Section II)."""
    assert combinational_max_frequency_hz(2) < 70e6
    assert combinational_max_frequency_hz(3) < 50e6


def test_latency_cycles():
    assert channel_latency_cycles(1) == 2
    assert channel_latency_cycles(5) == 6


def test_validation():
    for fn in (
        registered_max_frequency_hz,
        combinational_max_frequency_hz,
        channel_latency_cycles,
    ):
        with pytest.raises(ValueError):
            fn(0)


def test_frequency_table_shape():
    table = frequency_table(max_d=4)
    assert len(table) == 4
    for d, registered, combinational in table:
        assert registered >= combinational
    assert table[0][0] == 1
