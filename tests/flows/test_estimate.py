"""Unit tests for the calibrated resource model (Section V.B)."""

import pytest

from repro.core.params import RsbParameters, SystemParameters
from repro.fabric.device import get_device
from repro.flows.estimate import (
    comm_architecture_resources,
    comm_architecture_slices,
    module_slice_estimate,
    static_region_resources,
    switchbox_slices,
    system_resource_report,
)
from repro.modules.filters import Q15_ONE, BiquadIir, FirFilter, MovingAverage
from repro.modules.transforms import PassThrough


PROTO = SystemParameters.prototype()
PROTO_RSB = PROTO.rsbs[0]


def test_comm_architecture_matches_paper_exactly():
    """Section V.B: the inter-module communication architecture required
    1,020 slices for the prototype configuration."""
    assert comm_architecture_slices(PROTO_RSB) == 1020


def test_static_region_matches_paper_exactly():
    """Section V.B: the static region required 9,421 slices."""
    assert static_region_resources(PROTO).slices == 9421


def test_static_utilization_near_reported_86_percent():
    device = get_device("XC4VLX25")
    utilization = static_region_resources(PROTO).slices / device.slices
    # 9421/10752 = 87.6%; the paper rounds to "approximately 86%"
    assert 0.85 <= utilization <= 0.89


def test_switchbox_grows_with_width():
    narrow = switchbox_slices(RsbParameters(channel_width=16))
    wide = switchbox_slices(RsbParameters(channel_width=64))
    assert wide > 1.5 * narrow


def test_switchbox_grows_with_lanes():
    few = switchbox_slices(RsbParameters(kr=1, kl=1))
    many = switchbox_slices(RsbParameters(kr=4, kl=4))
    assert many > 2 * few


def test_comm_scales_with_attachments():
    small = comm_architecture_slices(RsbParameters(num_prrs=2, num_ioms=1))
    large = comm_architecture_slices(RsbParameters(num_prrs=6, num_ioms=2))
    assert large == pytest.approx(small * 8 / 3, rel=0.01)


def test_comm_bram_one_per_interface_fifo():
    resources = comm_architecture_resources(PROTO_RSB)
    # 3 attachments x (ki + ko = 2) FIFOs
    assert resources.bram18 == 6


def test_static_region_scales_with_prr_count():
    base = static_region_resources(PROTO).slices
    bigger = static_region_resources(
        PROTO.with_rsb(num_prrs=4, num_ioms=1, iom_positions=[0])
    ).slices
    assert bigger > base


def test_report_fits_prototype_on_vlx25():
    report = system_resource_report(PROTO, get_device("XC4VLX25"))
    assert report["fits"]
    assert report["static_slices"] == 9421
    assert report["comm_architecture_slices"] == 1020
    assert report["prr_slices"] == 1280


def test_report_overflows_small_device():
    report = system_resource_report(PROTO, get_device("XC4VLX15"))
    assert not report["fits"]


def test_bufr_and_bufg_counted_per_prr():
    resources = static_region_resources(PROTO)
    assert resources.bufr == 2  # one per PRR
    assert resources.bufg == 4  # system + feedback + 2 BUFGMUX
    assert resources.dcm == 1


def test_module_slice_estimates_ordering():
    small = module_slice_estimate(PassThrough("p"))
    fir8 = module_slice_estimate(FirFilter("f", [Q15_ONE] * 8))
    fir16 = module_slice_estimate(FirFilter("f", [Q15_ONE] * 16))
    avg = module_slice_estimate(MovingAverage("m", window=8))
    biquad = module_slice_estimate(BiquadIir("b", [1, 0, 0], [0, 0]))
    assert small < fir8 < fir16
    assert avg > small
    assert biquad > small


def test_prototype_modules_fit_prototype_prr():
    """Sanity: the example modules fit the 640-slice prototype PRR."""
    for module in [
        FirFilter("f", [Q15_ONE] * 16),
        MovingAverage("m", window=8),
        BiquadIir("b", [1, 0, 0], [0, 0]),
    ]:
        assert module_slice_estimate(module) <= 640
