"""Unit tests for the MHS/MSS/UCF generators."""

from repro.core.params import SystemParameters
from repro.fabric.device import get_device
from repro.fabric.floorplan import auto_floorplan
from repro.flows.sysdef import generate_mhs, generate_mss, generate_ucf

PROTO = SystemParameters.prototype()


def test_mhs_lists_core_peripherals():
    mhs = generate_mhs(PROTO)
    for instance in [
        "microblaze_0",
        "plb_v46_0",
        "plb2dcr_bridge_0",
        "xps_hwicap_0",
        "sysace_compactflash_0",
        "ddr_sdram_0",
        "xps_timer_0",
    ]:
        assert f"INSTANCE = {instance}" in mhs


def test_mhs_prsocket_per_attachment_with_parameters():
    mhs = generate_mhs(PROTO)
    assert mhs.count("INSTANCE = prsocket_rsb0") == 3
    assert "C_CHANNEL_WIDTH = 32" in mhs
    assert "C_KR = 2" in mhs
    assert "C_KO = 1" in mhs


def test_mhs_fsl_pair_per_attachment():
    mhs = generate_mhs(PROTO)
    assert mhs.count("INSTANCE = fsl_rsb0") == 6  # t + r per attachment
    assert "C_FSL_DEPTH = 512" in mhs


def test_mhs_distinct_dcr_addresses():
    mhs = generate_mhs(PROTO)
    lines = [l for l in mhs.splitlines() if "C_DCR_BASEADDR" in l]
    assert len(lines) == len(set(lines)) == 3


def test_mss_binds_drivers_and_api():
    mss = generate_mss(PROTO)
    for driver in ["hwicap", "sysace", "tmrctr", "uartlite"]:
        assert f"DRIVER_NAME = {driver}" in mss
    assert "xilfatfs" in mss  # CF filesystem for bitstream files
    assert "vapres_establish_channel" in mss


def test_ucf_area_groups_with_reconfig_mode():
    plan = auto_floorplan(
        get_device("XC4VLX25"), [("rsb0.prr0", 640), ("rsb0.prr1", 640)],
        boundary_signals=74,
    )
    ucf = generate_ucf(plan)
    assert ucf.count("MODE = RECONFIG") == 2
    assert 'AREA_GROUP "pblock_rsb0_prr0" RANGE = SLICE_X0Y0:SLICE_X19Y31;' in ucf
    assert "BUFR_X0Y0" in ucf
    assert ucf.count("busmacro") == 20  # 10 macros per PRR


def test_ucf_slice_coordinates_match_clb_geometry():
    plan = auto_floorplan(get_device("XC4VLX25"), [("p", 640)])
    ucf = generate_ucf(plan)
    rect = plan.prrs["p"].rect
    expected = (
        f"SLICE_X{2 * rect.col}Y{2 * rect.row}:"
        f"SLICE_X{2 * rect.col_end - 1}Y{2 * rect.row_end - 1}"
    )
    assert expected in ucf


def test_generators_are_deterministic():
    assert generate_mhs(PROTO) == generate_mhs(PROTO)
    assert generate_mss(PROTO) == generate_mss(PROTO)
