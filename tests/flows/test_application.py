"""Unit tests for the application flow."""

import pytest

from repro.core.kpn import KahnProcessNetwork
from repro.core.params import SystemParameters
from repro.flows.application import ApplicationFlow
from repro.flows.base_system import BaseSystemFlow, FlowError
from repro.modules.filters import Q15_ONE, FirFilter


def base_build():
    return BaseSystemFlow(SystemParameters.prototype()).run()


def simple_kpn():
    kpn = KahnProcessNetwork("filter-app")
    kpn.add_iom("io")
    kpn.add_module("fir", lambda: FirFilter("fir", [Q15_ONE] * 4))
    kpn.connect("io", "fir")
    kpn.connect("fir", "io")
    return kpn


def test_flow_generates_bitstream_per_module_prr_pair():
    flow = ApplicationFlow(base_build())
    build = flow.run(simple_kpn())
    assert build.module_slices["fir"] > 0
    assert len(build.bitstreams) == 2  # one per PRR
    names = {(b.module_name, b.prr_name) for b in build.bitstreams}
    assert names == {("fir", "rsb0.prr0"), ("fir", "rsb0.prr1")}


def test_flow_target_prr_restriction():
    flow = ApplicationFlow(base_build())
    build = flow.run(simple_kpn(), target_prrs={"fir": ["rsb0.prr1"]})
    assert len(build.bitstreams) == 1
    assert build.bitstreams[0].prr_name == "rsb0.prr1"


def test_flow_unknown_prr():
    flow = ApplicationFlow(base_build())
    with pytest.raises(FlowError, match="unknown PRR"):
        flow.run(simple_kpn(), target_prrs={"fir": ["rsb9.prrX"]})


def test_flow_rejects_oversized_module():
    kpn = KahnProcessNetwork("big")
    kpn.add_iom("io")
    # 64 taps * 34 slices/tap + wrapper > 640-slice PRR
    kpn.add_module("huge", lambda: FirFilter("huge", [Q15_ONE] * 64))
    kpn.connect("io", "huge")
    flow = ApplicationFlow(base_build())
    with pytest.raises(FlowError, match="enlarge the PRR"):
        flow.run(kpn)


def test_flow_software_modules_recorded():
    flow = ApplicationFlow(base_build())

    def controller():
        yield None

    flow.add_software_module("ctrl", controller)
    build = flow.run(simple_kpn())
    assert "ctrl" in build.software
    assert "ctrl" in build.summary()


def test_install_registers_on_live_system():
    base = base_build()
    flow = ApplicationFlow(base)
    build = flow.run(simple_kpn())
    system = base.instantiate()
    flow.install(build, system)
    assert system.repository.has("fir", "rsb0.prr0")
    assert system.repository.factory("fir")().name == "fir"
    # installing twice is idempotent
    flow.install(build, system)


def test_fragmentation_report():
    flow = ApplicationFlow(base_build())
    build = flow.run(simple_kpn())
    report = flow.fragmentation_report(build)
    module_slices, prr_slices, wasted = report["fir"]
    assert prr_slices == 640
    assert 0 < wasted < 1
    assert module_slices + round(wasted * prr_slices) == prr_slices


def test_bitstream_metadata_carries_module_size():
    flow = ApplicationFlow(base_build())
    build = flow.run(simple_kpn())
    for bitstream in build.bitstreams:
        assert bitstream.metadata["module_slices"] == build.module_slices["fir"]
