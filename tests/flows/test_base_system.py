"""Unit tests for the base system flow."""

import pytest

from repro.core.params import RsbParameters, SystemParameters
from repro.flows.base_system import BaseSystemFlow, FlowError


def test_prototype_flow_end_to_end():
    build = BaseSystemFlow(SystemParameters.prototype()).run()
    assert build.device.name == "XC4VLX25"
    assert build.report["static_slices"] == 9421
    assert "microblaze_0" in build.mhs
    assert "MODE = RECONFIG" in build.ucf
    assert build.static_bitstream_name == "vapres-prototype_static.bit"
    assert "9421 slices" in build.summary()


def test_flow_floorplan_covers_every_prr():
    # a third PRR no longer fits the LX25 (the paper's 86% static region
    # leaves room for exactly two); use the LX60 board
    params = SystemParameters(
        board="ML402",
        rsbs=[RsbParameters(num_prrs=3, num_ioms=1, iom_positions=[0])],
    )
    build = BaseSystemFlow(params).run()
    assert set(build.floorplan.prrs) == {
        "rsb0.prr0",
        "rsb0.prr1",
        "rsb0.prr2",
    }


def test_flow_rejects_overfull_device():
    params = SystemParameters(
        board="ML401",
        rsbs=[
            RsbParameters(
                num_prrs=2,
                num_ioms=1,
                iom_positions=[0],
                kr=8,
                kl=8,
                ki=4,
                ko=4,
                channel_width=64,
                prr_slices=640,
            )
        ],
    )
    with pytest.raises(FlowError, match="slices"):
        BaseSystemFlow(params).run()


def test_flow_build_instantiates_live_system():
    build = BaseSystemFlow(SystemParameters.prototype()).run()
    system = build.instantiate()
    assert system.floorplan is build.floorplan
    assert len(system.prr_slots) == 2


def test_flow_with_custom_floorplan():
    flow = BaseSystemFlow(SystemParameters.prototype())
    plan = flow.design_floorplan()
    build = flow.run(floorplan=plan)
    assert build.floorplan is plan


def test_flow_large_device_supports_many_prrs():
    params = SystemParameters(
        board="ML402",  # XC4VLX60
        rsbs=[
            RsbParameters(
                num_prrs=6, num_ioms=2, iom_positions=[0, 7], prr_slices=640
            )
        ],
    )
    build = BaseSystemFlow(params).run()
    assert len(build.floorplan.prrs) == 6
    assert build.report["fits"]
