"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments without the ``wheel`` package (legacy ``setup.py develop``
path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "VAPRES: a virtual architecture for partially reconfigurable "
        "embedded systems (DATE 2010) - behavioural reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
